//===- Ir.cpp - PTX in-memory representation -------------------------------===//

#include "ptx/Ir.h"

#include "support/Format.h"

using namespace barracuda;
using namespace barracuda::ptx;

static uint32_t layoutVars(std::vector<SymbolInfo> &Vars) {
  uint32_t Offset = 0;
  for (SymbolInfo &Var : Vars) {
    uint32_t Align = Var.Align ? Var.Align : 4;
    Offset = (Offset + Align - 1) & ~(Align - 1);
    Var.Address = Offset;
    Offset += Var.SizeBytes;
  }
  return Offset;
}

void Kernel::layoutSharedVars() {
  SharedBytes = layoutVars(SharedVars);
  LocalBytes = layoutVars(LocalVars);
}

std::string Kernel::resolveLabels() {
  for (size_t Index = 0; Index != Body.size(); ++Index) {
    Instruction &Insn = Body[Index];
    for (Operand &Op : Insn.Ops) {
      if (Op.Kind != Operand::OperandKind::Label)
        continue;
      auto It = Labels.find(Op.LabelName);
      if (It == Labels.end())
        return support::formatString(
            "kernel '%s': line %u: undefined label '%s'", Name.c_str(),
            Insn.Line, Op.LabelName.c_str());
      Op.Target = static_cast<int32_t>(It->second);
    }
  }
  return std::string();
}

Kernel *Module::findKernel(const std::string &KernelName) {
  for (Kernel &K : Kernels)
    if (K.Name == KernelName)
      return &K;
  return nullptr;
}

const Kernel *Module::findKernel(const std::string &KernelName) const {
  for (const Kernel &K : Kernels)
    if (K.Name == KernelName)
      return &K;
  return nullptr;
}

const Kernel *Module::findFunction(const std::string &FuncName) const {
  for (const Kernel &F : Functions)
    if (F.Name == FuncName)
      return &F;
  return nullptr;
}

uint64_t Module::staticInstructionCount() const {
  uint64_t Count = 0;
  for (const Kernel &K : Kernels)
    Count += K.Body.size();
  return Count;
}
