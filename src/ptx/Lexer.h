//===- Lexer.h - PTX tokenizer ---------------------------------------------===//
//
// Part of the BARRACUDA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written tokenizer for the PTX subset. Handles identifiers,
/// dotted directives, registers (%r1, %tid.x), integer and floating
/// immediates (including the PTX 0fXXXXXXXX / 0dXXXXXXXXXXXXXXXX hex-float
/// forms), punctuation, and both comment styles.
///
//===----------------------------------------------------------------------===//

#ifndef BARRACUDA_PTX_LEXER_H
#define BARRACUDA_PTX_LEXER_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace barracuda {
namespace ptx {

/// Token kinds produced by the lexer.
enum class TokenKind : uint8_t {
  Eof,
  Ident,    ///< bare identifier (mnemonic parts, labels, symbols)
  Reg,      ///< %name (text excludes the '%'; may contain dots: tid.x)
  Int,      ///< integer literal (value in IntValue)
  Float,    ///< floating literal (value in FloatValue)
  Dot,
  Comma,
  Semi,
  Colon,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  LParen,
  RParen,
  Lt,
  Gt,
  At,
  Bang,
  Plus,
  Minus,
  Error, ///< lexing error; Text holds the message
};

/// Tokens do not own their text: Text is a view into the Lexer's retained
/// source buffer (or, for the single Error token, into the Lexer's error
/// storage), so the Lexer must outlive every token it produced.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string_view Text;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  uint32_t Line = 0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isIdent(const char *Name) const {
    return Kind == TokenKind::Ident && Text == Name;
  }
};

/// Tokenizes a whole PTX source buffer up front. Identifier and register
/// tokens are zero-copy slices of the source; the buffer is retained by
/// the Lexer so the views stay valid.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Tokenizes the entire buffer. The final token is always Eof (or Error).
  std::vector<Token> lexAll();

private:
  Token lexOne();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  void skipWhitespaceAndComments();
  Token makeError(std::string Message);
  Token lexNumber(bool Negative);
  Token lexIdent();
  Token lexRegister();

  std::string Source;
  std::string ErrorStorage; ///< backs the Error token's message view
  size_t Pos = 0;
  uint32_t Line = 1;
};

} // namespace ptx
} // namespace barracuda

#endif // BARRACUDA_PTX_LEXER_H
