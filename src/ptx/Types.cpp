//===- Types.cpp - PTX scalar types, state spaces, enums ------------------===//

#include "ptx/Types.h"

#include <cassert>

using namespace barracuda;
using namespace barracuda::ptx;

unsigned ptx::sizeOfType(Type Ty) {
  switch (Ty) {
  case Type::None:
  case Type::Pred:
    return 0;
  case Type::B8:
  case Type::U8:
  case Type::S8:
    return 1;
  case Type::B16:
  case Type::U16:
  case Type::S16:
    return 2;
  case Type::B32:
  case Type::U32:
  case Type::S32:
  case Type::F32:
    return 4;
  case Type::B64:
  case Type::U64:
  case Type::S64:
  case Type::F64:
    return 8;
  }
  assert(false && "unknown type");
  return 0;
}

bool ptx::isSignedType(Type Ty) {
  switch (Ty) {
  case Type::S8:
  case Type::S16:
  case Type::S32:
  case Type::S64:
    return true;
  default:
    return false;
  }
}

bool ptx::isFloatType(Type Ty) {
  return Ty == Type::F32 || Ty == Type::F64;
}

const char *ptx::typeName(Type Ty) {
  switch (Ty) {
  case Type::None:
    return "none";
  case Type::Pred:
    return "pred";
  case Type::B8:
    return "b8";
  case Type::B16:
    return "b16";
  case Type::B32:
    return "b32";
  case Type::B64:
    return "b64";
  case Type::U8:
    return "u8";
  case Type::U16:
    return "u16";
  case Type::U32:
    return "u32";
  case Type::U64:
    return "u64";
  case Type::S8:
    return "s8";
  case Type::S16:
    return "s16";
  case Type::S32:
    return "s32";
  case Type::S64:
    return "s64";
  case Type::F32:
    return "f32";
  case Type::F64:
    return "f64";
  }
  return "none";
}

Type ptx::parseTypeName(std::string_view Name) {
  static const struct {
    const char *Name;
    Type Ty;
  } Table[] = {
      {"pred", Type::Pred}, {"b8", Type::B8},   {"b16", Type::B16},
      {"b32", Type::B32},   {"b64", Type::B64}, {"u8", Type::U8},
      {"u16", Type::U16},   {"u32", Type::U32}, {"u64", Type::U64},
      {"s8", Type::S8},     {"s16", Type::S16}, {"s32", Type::S32},
      {"s64", Type::S64},   {"f32", Type::F32}, {"f64", Type::F64},
  };
  for (const auto &Entry : Table)
    if (Name == Entry.Name)
      return Entry.Ty;
  return Type::None;
}

const char *ptx::stateSpaceName(StateSpace Space) {
  switch (Space) {
  case StateSpace::Generic:
    return "generic";
  case StateSpace::Global:
    return "global";
  case StateSpace::Shared:
    return "shared";
  case StateSpace::Local:
    return "local";
  case StateSpace::Param:
    return "param";
  case StateSpace::Const:
    return "const";
  }
  return "generic";
}

const char *ptx::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::Mov:
    return "mov";
  case Opcode::Ld:
    return "ld";
  case Opcode::St:
    return "st";
  case Opcode::Atom:
    return "atom";
  case Opcode::Membar:
    return "membar";
  case Opcode::Bar:
    return "bar";
  case Opcode::Bra:
    return "bra";
  case Opcode::Setp:
    return "setp";
  case Opcode::Selp:
    return "selp";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Mad:
    return "mad";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::Min:
    return "min";
  case Opcode::Max:
    return "max";
  case Opcode::Neg:
    return "neg";
  case Opcode::Abs:
    return "abs";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Not:
    return "not";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Cvt:
    return "cvt";
  case Opcode::Cvta:
    return "cvta";
  case Opcode::Ret:
    return "ret";
  case Opcode::Exit:
    return "exit";
  case Opcode::Call:
    return "call";
  case Opcode::Popc:
    return "popc";
  case Opcode::Clz:
    return "clz";
  case Opcode::Brev:
    return "brev";
  }
  return "nop";
}

const char *ptx::atomOpName(AtomOpKind Op) {
  switch (Op) {
  case AtomOpKind::AO_None:
    return "none";
  case AtomOpKind::AO_Exch:
    return "exch";
  case AtomOpKind::AO_Cas:
    return "cas";
  case AtomOpKind::AO_Add:
    return "add";
  case AtomOpKind::AO_Min:
    return "min";
  case AtomOpKind::AO_Max:
    return "max";
  case AtomOpKind::AO_And:
    return "and";
  case AtomOpKind::AO_Or:
    return "or";
  case AtomOpKind::AO_Xor:
    return "xor";
  case AtomOpKind::AO_Inc:
    return "inc";
  case AtomOpKind::AO_Dec:
    return "dec";
  }
  return "none";
}

AtomOpKind ptx::parseAtomOpName(std::string_view Name) {
  static const struct {
    const char *Name;
    AtomOpKind Op;
  } Table[] = {
      {"exch", AtomOpKind::AO_Exch}, {"cas", AtomOpKind::AO_Cas},
      {"add", AtomOpKind::AO_Add},   {"min", AtomOpKind::AO_Min},
      {"max", AtomOpKind::AO_Max},   {"and", AtomOpKind::AO_And},
      {"or", AtomOpKind::AO_Or},     {"xor", AtomOpKind::AO_Xor},
      {"inc", AtomOpKind::AO_Inc},   {"dec", AtomOpKind::AO_Dec},
  };
  for (const auto &Entry : Table)
    if (Name == Entry.Name)
      return Entry.Op;
  return AtomOpKind::AO_None;
}

const char *ptx::cmpOpName(CmpOpKind Op) {
  switch (Op) {
  case CmpOpKind::CO_None:
    return "none";
  case CmpOpKind::CO_Eq:
    return "eq";
  case CmpOpKind::CO_Ne:
    return "ne";
  case CmpOpKind::CO_Lt:
    return "lt";
  case CmpOpKind::CO_Le:
    return "le";
  case CmpOpKind::CO_Gt:
    return "gt";
  case CmpOpKind::CO_Ge:
    return "ge";
  }
  return "none";
}

CmpOpKind ptx::parseCmpOpName(std::string_view Name) {
  static const struct {
    const char *Name;
    CmpOpKind Op;
  } Table[] = {
      {"eq", CmpOpKind::CO_Eq}, {"ne", CmpOpKind::CO_Ne},
      {"lt", CmpOpKind::CO_Lt}, {"le", CmpOpKind::CO_Le},
      {"gt", CmpOpKind::CO_Gt}, {"ge", CmpOpKind::CO_Ge},
  };
  for (const auto &Entry : Table)
    if (Name == Entry.Name)
      return Entry.Op;
  return CmpOpKind::CO_None;
}

const char *ptx::fenceScopeName(FenceScopeKind Scope) {
  switch (Scope) {
  case FenceScopeKind::FS_None:
    return "none";
  case FenceScopeKind::FS_Cta:
    return "cta";
  case FenceScopeKind::FS_Gl:
    return "gl";
  case FenceScopeKind::FS_Sys:
    return "sys";
  }
  return "none";
}

const char *ptx::specialRegName(SpecialReg Reg) {
  switch (Reg) {
  case SpecialReg::TidX:
    return "tid.x";
  case SpecialReg::TidY:
    return "tid.y";
  case SpecialReg::TidZ:
    return "tid.z";
  case SpecialReg::NtidX:
    return "ntid.x";
  case SpecialReg::NtidY:
    return "ntid.y";
  case SpecialReg::NtidZ:
    return "ntid.z";
  case SpecialReg::CtaIdX:
    return "ctaid.x";
  case SpecialReg::CtaIdY:
    return "ctaid.y";
  case SpecialReg::CtaIdZ:
    return "ctaid.z";
  case SpecialReg::NctaIdX:
    return "nctaid.x";
  case SpecialReg::NctaIdY:
    return "nctaid.y";
  case SpecialReg::NctaIdZ:
    return "nctaid.z";
  case SpecialReg::LaneId:
    return "laneid";
  case SpecialReg::WarpSize:
    return "WARP_SZ";
  }
  return "tid.x";
}

bool ptx::parseSpecialRegName(std::string_view Name, SpecialReg &Out) {
  static const struct {
    const char *Name;
    SpecialReg Reg;
  } Table[] = {
      {"tid.x", SpecialReg::TidX},       {"tid.y", SpecialReg::TidY},
      {"tid.z", SpecialReg::TidZ},       {"ntid.x", SpecialReg::NtidX},
      {"ntid.y", SpecialReg::NtidY},     {"ntid.z", SpecialReg::NtidZ},
      {"ctaid.x", SpecialReg::CtaIdX},   {"ctaid.y", SpecialReg::CtaIdY},
      {"ctaid.z", SpecialReg::CtaIdZ},   {"nctaid.x", SpecialReg::NctaIdX},
      {"nctaid.y", SpecialReg::NctaIdY}, {"nctaid.z", SpecialReg::NctaIdZ},
      {"laneid", SpecialReg::LaneId},    {"WARP_SZ", SpecialReg::WarpSize},
  };
  for (const auto &Entry : Table) {
    if (Name == Entry.Name) {
      Out = Entry.Reg;
      return true;
    }
  }
  return false;
}
