//===- Inliner.h - device-function inlining --------------------------------===//
//
// Part of the BARRACUDA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inlines device functions (.func) into kernels at their call sites.
/// The paper's trace model treats function calls as "implicitly
/// unrolled/inlined in the trace" (Section 3.1), and its framework
/// threads the computed TID through every device function; inlining
/// before instrumentation realizes both at once — the instrumenter and
/// the machine only ever see call-free kernels.
///
/// Each call site gets a fresh copy of the callee body with renamed
/// registers and labels, argument/return values wired through mov
/// instructions, and `ret` rewritten to a branch past the inlined body.
/// Nested calls inline iteratively; recursion is rejected.
///
//===----------------------------------------------------------------------===//

#ifndef BARRACUDA_PTX_INLINER_H
#define BARRACUDA_PTX_INLINER_H

#include "ptx/Ir.h"

#include <string>

namespace barracuda {
namespace ptx {

/// Inlines every call in every kernel of \p M. Returns an empty string
/// on success, else a diagnostic (unknown callee, arity mismatch, or
/// recursion). Device functions are left in place (and unmodified).
std::string inlineFunctions(Module &M);

/// Inlines calls within one kernel. \p InlineBudget bounds the total
/// number of call sites expanded (recursion guard).
std::string inlineFunctionsInKernel(Module &M, Kernel &K,
                                    unsigned InlineBudget = 256);

} // namespace ptx
} // namespace barracuda

#endif // BARRACUDA_PTX_INLINER_H
