//===- Parser.h - PTX parser -----------------------------------------------===//
//
// Part of the BARRACUDA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent parser for the PTX subset. Produces a ptx::Module.
/// The parser corresponds to the fat-binary extraction step of the paper's
/// instrumentation pipeline: the text that would be pulled out of
/// __cudaRegisterFatBinary is parsed here instead.
///
/// Name resolution is interner-backed: every identifier is interned to a
/// dense id exactly once, and a per-id Binding table resolves registers,
/// params, shared/local vars and module globals in O(1) instead of the
/// linear scans the public Kernel/Module lookup API performs. Kernel-scoped
/// bindings are reset between kernels via a touched-id list.
///
//===----------------------------------------------------------------------===//

#ifndef BARRACUDA_PTX_PARSER_H
#define BARRACUDA_PTX_PARSER_H

#include "ptx/Ir.h"
#include "ptx/Lexer.h"
#include "support/Arena.h"

#include <memory>
#include <string>
#include <string_view>

namespace barracuda {
namespace ptx {

/// Parses PTX source text into a Module.
class Parser {
public:
  explicit Parser(std::string Source);

  /// Parses the whole buffer. Returns nullptr on error; see error().
  std::unique_ptr<Module> parseModule();

  /// The first diagnostic produced, empty if parsing succeeded.
  const std::string &error() const { return ErrorMessage; }

private:
  /// What a parsed identifier resolves to. Reg/Param/Shared/Local are
  /// kernel-scoped (reset per kernel); Global lives for the module.
  struct Binding {
    int32_t Reg = -1;
    int32_t Param = -1;
    int32_t Shared = -1;
    int32_t Local = -1;
    int32_t Global = -1;
  };

  // Token access.
  const Token &cur() const { return Tokens[Index]; }
  const Token &peek(unsigned Ahead = 1) const {
    size_t At = Index + Ahead;
    return At < Tokens.size() ? Tokens[At] : Tokens.back();
  }
  void next() {
    if (Index + 1 < Tokens.size())
      ++Index;
  }
  bool accept(TokenKind Kind) {
    if (!cur().is(Kind))
      return false;
    next();
    return true;
  }
  bool expect(TokenKind Kind, const char *What);
  bool acceptIdent(const char *Name) {
    if (!cur().isIdent(Name))
      return false;
    next();
    return true;
  }

  // Identifier bindings.
  Binding &bindingFor(std::string_view Name);
  const Binding *lookupBinding(std::string_view Name) const;
  void beginKernelScope();

  // Error reporting. All fail() overloads return false for tail-calls.
  bool fail(const std::string &Message);

  // Grammar productions.
  bool parseTopLevel(Module &M);
  bool parseModuleVariable(Module &M, StateSpace Space);
  bool parseKernel(Module &M);
  bool parseFunction(Module &M);
  bool parseFuncFormal(Kernel &F, std::vector<int32_t> &Out);
  bool parseCallOperands(Kernel &K, Instruction &Insn);
  bool parseKernelParams(Kernel &K);
  bool parseKernelBody(Module &M, Kernel &K);
  bool parseRegDecl(Kernel &K);
  bool parseKernelVariable(Kernel &K, StateSpace Space);
  bool parseInstruction(Module &M, Kernel &K);
  bool parseOperand(Module &M, Kernel &K, Instruction &Insn);
  bool parseAddressOperand(Module &M, Kernel &K, Instruction &Insn);
  bool applyModifier(Instruction &Insn, std::string_view Mod,
                     std::vector<Type> &TypesSeen);
  bool parseVarSuffix(SymbolInfo &Var);

  // Declaration order matters: Tokens hold string_views into Lex's source.
  Lexer Lex;
  std::vector<Token> Tokens;
  size_t Index = 0;
  std::string ErrorMessage;
  support::StringInterner Idents;
  std::vector<Binding> ByIdent;    ///< indexed by interned id
  std::vector<uint32_t> KernelIds; ///< ids touched by the current kernel
};

/// Convenience wrapper: parses \p Source, aborting the process with a
/// diagnostic on stderr if it does not parse. For tests and internally
/// generated PTX that is expected to be well-formed.
std::unique_ptr<Module> parseOrDie(const std::string &Source);

} // namespace ptx
} // namespace barracuda

#endif // BARRACUDA_PTX_PARSER_H
