//===- Cfg.cpp - control-flow graph and post-dominator analysis -----------===//

#include "ptx/Cfg.h"

#include <algorithm>
#include <cassert>

using namespace barracuda;
using namespace barracuda::ptx;

Cfg::Cfg(const Kernel &Kern) : K(Kern) {
  buildBlocks(K);
  buildEdges(K);
  computePostDominators();
}

void Cfg::buildBlocks(const Kernel &Kern) {
  const auto &Body = Kern.Body;
  std::vector<bool> Leader(Body.size() + 1, false);
  if (!Body.empty())
    Leader[0] = true;

  for (size_t Index = 0; Index != Body.size(); ++Index) {
    const Instruction &Insn = Body[Index];
    if (Insn.Op == Opcode::Bra) {
      assert(!Insn.Ops.empty() && Insn.Ops[0].Target >= 0 &&
             "unresolved branch target");
      uint32_t Target = static_cast<uint32_t>(Insn.Ops[0].Target);
      if (Target < Leader.size())
        Leader[Target] = true;
    }
    if (Insn.isTerminator() && Index + 1 < Body.size())
      Leader[Index + 1] = true;
  }

  BlockOf.assign(Body.size(), 0);
  for (size_t Index = 0; Index != Body.size(); ++Index) {
    if (Leader[Index]) {
      BasicBlock Block;
      Block.First = static_cast<uint32_t>(Index);
      Blocks.push_back(Block);
    }
    assert(!Blocks.empty() && "first instruction must be a leader");
    Blocks.back().End = static_cast<uint32_t>(Index + 1);
    BlockOf[Index] = static_cast<uint32_t>(Blocks.size() - 1);
  }
}

void Cfg::buildEdges(const Kernel &Kern) {
  const auto &Body = Kern.Body;
  uint32_t Exit = exitId();

  auto addEdge = [&](uint32_t From, uint32_t To) {
    Blocks[From].Succs.push_back(To);
    if (To == Exit)
      ExitPreds.push_back(From);
    else
      Blocks[To].Preds.push_back(From);
  };

  for (uint32_t BlockId = 0; BlockId != Blocks.size(); ++BlockId) {
    const BasicBlock &Block = Blocks[BlockId];
    assert(Block.End > Block.First && "empty basic block");
    const Instruction &Last = Body[Block.End - 1];

    if (Last.Op == Opcode::Ret || Last.Op == Opcode::Exit) {
      addEdge(BlockId, Exit);
      continue;
    }
    if (Last.Op == Opcode::Bra) {
      uint32_t Target = static_cast<uint32_t>(Last.Ops[0].Target);
      addEdge(BlockId, Target >= Body.size() ? Exit : BlockOf[Target]);
      if (Last.isGuarded()) {
        // Conditional branch: fall through as well.
        addEdge(BlockId,
                Block.End >= Body.size() ? Exit : BlockOf[Block.End]);
      }
      continue;
    }
    // Plain fallthrough (block ended because the next insn is a leader,
    // or the kernel body ran out, which is an implicit exit).
    addEdge(BlockId, Block.End >= Body.size() ? Exit : BlockOf[Block.End]);
  }
}

void Cfg::computePostDominators() {
  // Standard iterative algorithm (Cooper/Harvey/Kennedy) on the reverse
  // CFG rooted at the virtual exit node.
  uint32_t NodeCount = static_cast<uint32_t>(Blocks.size()) + 1;
  uint32_t Exit = exitId();
  constexpr uint32_t Undef = ~0u;

  // Postorder of the *reverse* graph from Exit (edges: succ -> pred).
  std::vector<uint32_t> Order;           // postorder sequence
  std::vector<uint32_t> OrderIndex(NodeCount, Undef);
  {
    std::vector<uint8_t> State(NodeCount, 0);
    std::vector<std::pair<uint32_t, size_t>> Stack;
    Stack.emplace_back(Exit, 0);
    State[Exit] = 1;
    while (!Stack.empty()) {
      auto &[Node, EdgeIndex] = Stack.back();
      const std::vector<uint32_t> &Preds =
          Node == Exit ? ExitPreds : Blocks[Node].Preds;
      // In the reverse graph, the "successors" of Node are its CFG preds.
      if (EdgeIndex < Preds.size()) {
        uint32_t Next = Preds[EdgeIndex++];
        if (!State[Next]) {
          State[Next] = 1;
          Stack.emplace_back(Next, 0);
        }
        continue;
      }
      OrderIndex[Node] = static_cast<uint32_t>(Order.size());
      Order.push_back(Node);
      Stack.pop_back();
    }
  }

  Ipdom.assign(NodeCount, Undef);
  Ipdom[Exit] = Exit;

  auto intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (OrderIndex[A] < OrderIndex[B])
        A = Ipdom[A];
      while (OrderIndex[B] < OrderIndex[A])
        B = Ipdom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Iterate in reverse postorder of the reverse graph, skipping Exit.
    for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
      uint32_t Node = *It;
      if (Node == Exit)
        continue;
      uint32_t NewIpdom = Undef;
      for (uint32_t Succ : Blocks[Node].Succs) {
        if (OrderIndex[Succ] == Undef || Ipdom[Succ] == Undef)
          continue;
        NewIpdom = NewIpdom == Undef ? Succ : intersect(NewIpdom, Succ);
      }
      if (NewIpdom != Undef && Ipdom[Node] != NewIpdom) {
        Ipdom[Node] = NewIpdom;
        Changed = true;
      }
    }
  }

  // Blocks with no path to exit (infinite loops) reconverge nowhere;
  // treat their post-dominator as the exit node.
  for (uint32_t Node = 0; Node != NodeCount; ++Node)
    if (Ipdom[Node] == Undef)
      Ipdom[Node] = Exit;
}

uint32_t Cfg::reconvergencePoint(uint32_t BranchInsn) const {
  assert(BranchInsn < K.Body.size() && "branch index out of range");
  uint32_t Block = BlockOf[BranchInsn];
  uint32_t Post = Ipdom[Block];
  if (Post == exitId())
    return static_cast<uint32_t>(K.Body.size());
  return Blocks[Post].First;
}

bool Cfg::postDominates(uint32_t A, uint32_t B) const {
  // Walk the post-dominator tree upward from B.
  uint32_t Node = B;
  for (;;) {
    if (Node == A)
      return true;
    uint32_t Up = Ipdom[Node];
    if (Up == Node)
      return Node == A;
    Node = Up;
  }
}
