//===- Cfg.h - control-flow graph and post-dominator analysis -------------===//
//
// Part of the BARRACUDA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a basic-block control-flow graph for a kernel and computes
/// immediate post-dominators. The simulator uses the immediate
/// post-dominator of a divergent branch as the warp reconvergence point,
/// mirroring the hardware SIMT stack (Fung et al., MICRO 2007) that the
/// paper's semantics model, and the instrumenter uses it to place the
/// branch-convergence logging that generates if/else/fi trace operations.
///
//===----------------------------------------------------------------------===//

#ifndef BARRACUDA_PTX_CFG_H
#define BARRACUDA_PTX_CFG_H

#include "ptx/Ir.h"

#include <cstdint>
#include <vector>

namespace barracuda {
namespace ptx {

/// A basic block: the half-open instruction range [First, End).
struct BasicBlock {
  uint32_t First = 0;
  uint32_t End = 0;
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;
};

/// Control-flow graph over a kernel body, with a virtual exit node.
class Cfg {
public:
  explicit Cfg(const Kernel &K);

  const std::vector<BasicBlock> &blocks() const { return Blocks; }

  /// The id of the virtual exit node (== blocks().size()).
  uint32_t exitId() const { return static_cast<uint32_t>(Blocks.size()); }

  /// The block containing instruction \p InsnIndex.
  uint32_t blockOf(uint32_t InsnIndex) const { return BlockOf[InsnIndex]; }

  /// Immediate post-dominator of block \p BlockId (exitId() if none).
  uint32_t ipdom(uint32_t BlockId) const { return Ipdom[BlockId]; }

  /// The instruction index at which a warp diverging at the branch
  /// instruction \p BranchInsn reconverges. Returns the kernel body size
  /// when the reconvergence point is kernel exit.
  uint32_t reconvergencePoint(uint32_t BranchInsn) const;

  /// True if \p A post-dominates \p B (both block ids; exitId() allowed).
  bool postDominates(uint32_t A, uint32_t B) const;

private:
  void buildBlocks(const Kernel &K);
  void buildEdges(const Kernel &K);
  void computePostDominators();

  const Kernel &K;
  std::vector<BasicBlock> Blocks;
  std::vector<uint32_t> BlockOf;
  std::vector<uint32_t> Ipdom;      ///< indexed by block id, + exit
  std::vector<uint32_t> ExitPreds;  ///< predecessors of the virtual exit
};

} // namespace ptx
} // namespace barracuda

#endif // BARRACUDA_PTX_CFG_H
