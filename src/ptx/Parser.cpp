//===- Parser.cpp - PTX parser ---------------------------------------------===//

#include "ptx/Parser.h"

#include "obs/Log.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>

using namespace barracuda;
using namespace barracuda::ptx;
using support::formatString;

static std::string str(std::string_view S) { return std::string(S); }

Parser::Parser(std::string Source) : Lex(std::move(Source)) {
  Tokens = Lex.lexAll();
}

Parser::Binding &Parser::bindingFor(std::string_view Name) {
  uint32_t Id = Idents.intern(Name);
  if (Id >= ByIdent.size())
    ByIdent.resize(Id + 1);
  // Recording every touched id (even global-only ones) keeps the reset in
  // beginKernelScope O(touched); clearing kernel fields that are already
  // -1 is harmless.
  KernelIds.push_back(Id);
  return ByIdent[Id];
}

const Parser::Binding *Parser::lookupBinding(std::string_view Name) const {
  uint32_t Id = Idents.lookup(Name);
  if (Id == support::StringInterner::None || Id >= ByIdent.size())
    return nullptr;
  return &ByIdent[Id];
}

void Parser::beginKernelScope() {
  for (uint32_t Id : KernelIds) {
    Binding &B = ByIdent[Id];
    B.Reg = B.Param = B.Shared = B.Local = -1;
  }
  KernelIds.clear();
}

bool Parser::fail(const std::string &Message) {
  if (ErrorMessage.empty())
    ErrorMessage = formatString("line %u: %s", cur().Line, Message.c_str());
  return false;
}

bool Parser::expect(TokenKind Kind, const char *What) {
  if (accept(Kind))
    return true;
  return fail(formatString("expected %s", What));
}

std::unique_ptr<Module> Parser::parseModule() {
  if (!Tokens.empty() && Tokens.back().is(TokenKind::Error)) {
    ErrorMessage = formatString("line %u: %s", Tokens.back().Line,
                                str(Tokens.back().Text).c_str());
    return nullptr;
  }

  auto M = std::make_unique<Module>();
  while (!cur().is(TokenKind::Eof)) {
    if (!parseTopLevel(*M))
      return nullptr;
  }
  if (M->Kernels.empty())
    return fail("module contains no kernels"), nullptr;
  return M;
}

bool Parser::parseTopLevel(Module &M) {
  if (!expect(TokenKind::Dot, "a top-level directive"))
    return false;
  if (!cur().is(TokenKind::Ident))
    return fail("expected directive name after '.'");
  std::string_view Directive = cur().Text;
  next();

  if (Directive == "version") {
    if (cur().is(TokenKind::Float))
      M.Version = formatString("%.1f", cur().FloatValue);
    else if (cur().is(TokenKind::Int))
      M.Version = std::to_string(cur().IntValue);
    else
      return fail("expected version number");
    next();
    return true;
  }
  if (Directive == "target") {
    if (!cur().is(TokenKind::Ident))
      return fail("expected target name");
    M.Target = str(cur().Text);
    next();
    while (accept(TokenKind::Comma)) {
      if (!cur().is(TokenKind::Ident))
        return fail("expected target option");
      next();
    }
    return true;
  }
  if (Directive == "address_size") {
    if (!cur().is(TokenKind::Int))
      return fail("expected address size");
    M.AddressSize = static_cast<unsigned>(cur().IntValue);
    next();
    return true;
  }
  if (Directive == "visible" || Directive == "extern" ||
      Directive == "weak") {
    // Linkage qualifiers precede .entry / .global; nothing to record.
    return true;
  }
  if (Directive == "entry")
    return parseKernel(M);
  if (Directive == "func")
    return parseFunction(M);
  if (Directive == "global" || Directive == "const")
    return parseModuleVariable(M, Directive == "global" ? StateSpace::Global
                                                        : StateSpace::Const);
  return fail(formatString("unsupported directive '.%s'",
                           str(Directive).c_str()));
}

/// Parses "[.align N] .<type> name[ [count] ];" after the space directive.
bool Parser::parseVarSuffix(SymbolInfo &Var) {
  if (accept(TokenKind::Dot)) {
    if (acceptIdent("align")) {
      if (!cur().is(TokenKind::Int))
        return fail("expected alignment");
      Var.Align = static_cast<uint32_t>(cur().IntValue);
      next();
      if (!expect(TokenKind::Dot, "'.' before variable type"))
        return false;
    }
    if (!cur().is(TokenKind::Ident))
      return fail("expected variable type");
    Var.ElemTy = parseTypeName(cur().Text);
    if (Var.ElemTy == Type::None)
      return fail(formatString("unknown type '%s'", str(cur().Text).c_str()));
    next();
  } else {
    return fail("expected '.' before variable type");
  }

  if (!cur().is(TokenKind::Ident))
    return fail("expected variable name");
  Var.Name = str(cur().Text);
  next();

  uint64_t Count = 1;
  if (accept(TokenKind::LBracket)) {
    if (!cur().is(TokenKind::Int))
      return fail("expected array size");
    Count = static_cast<uint64_t>(cur().IntValue);
    next();
    if (!expect(TokenKind::RBracket, "']'"))
      return false;
  }
  unsigned ElemSize = sizeOfType(Var.ElemTy);
  if (ElemSize == 0)
    return fail("variables of predicate type are not allowed");
  Var.SizeBytes = static_cast<uint32_t>(Count * ElemSize);
  if (Var.Align == 0)
    Var.Align = ElemSize;
  return expect(TokenKind::Semi, "';' after variable declaration");
}

bool Parser::parseModuleVariable(Module &M, StateSpace Space) {
  SymbolInfo Var;
  Var.Space = Space;
  Var.Align = 0;
  if (!parseVarSuffix(Var))
    return false;
  Binding &B = bindingFor(Var.Name);
  if (B.Global >= 0)
    return fail(formatString("duplicate global '%s'", Var.Name.c_str()));
  B.Global = static_cast<int32_t>(M.Globals.size());
  M.Globals.push_back(std::move(Var));
  return true;
}

bool Parser::parseKernelParams(Kernel &K) {
  if (!expect(TokenKind::LParen, "'(' after kernel name"))
    return false;
  if (accept(TokenKind::RParen))
    return true;
  do {
    if (!expect(TokenKind::Dot, "'.param'"))
      return false;
    if (!acceptIdent("param"))
      return fail("expected 'param'");
    if (!expect(TokenKind::Dot, "'.' before param type"))
      return false;
    if (!cur().is(TokenKind::Ident))
      return fail("expected param type");
    Type Ty = parseTypeName(cur().Text);
    if (Ty == Type::None || Ty == Type::Pred)
      return fail(formatString("invalid param type '%s'",
                               str(cur().Text).c_str()));
    next();
    if (!cur().is(TokenKind::Ident))
      return fail("expected param name");
    ParamInfo Param;
    Param.Name = str(cur().Text);
    Param.Ty = Ty;
    next();
    unsigned Size = sizeOfType(Ty);
    K.ParamBytes = (K.ParamBytes + Size - 1) & ~(Size - 1);
    Param.Offset = K.ParamBytes;
    K.ParamBytes += Size;
    Binding &B = bindingFor(Param.Name);
    if (B.Param < 0) // first declaration wins, matching findParam
      B.Param = static_cast<int32_t>(K.Params.size());
    K.Params.push_back(std::move(Param));
  } while (accept(TokenKind::Comma));
  return expect(TokenKind::RParen, "')' after kernel params");
}

bool Parser::parseRegDecl(Kernel &K) {
  // ".reg" already consumed along with the leading dot.
  if (!expect(TokenKind::Dot, "'.' before register type"))
    return false;
  if (!cur().is(TokenKind::Ident))
    return fail("expected register type");
  Type Ty = parseTypeName(cur().Text);
  if (Ty == Type::None)
    return fail(formatString("unknown register type '%s'",
                             str(cur().Text).c_str()));
  next();
  do {
    if (!cur().is(TokenKind::Reg))
      return fail("expected register name");
    std::string Name(cur().Text);
    next();
    if (accept(TokenKind::Lt)) {
      if (!cur().is(TokenKind::Int))
        return fail("expected register count");
      int64_t Count = cur().IntValue;
      next();
      if (!expect(TokenKind::Gt, "'>'"))
        return false;
      for (int64_t I = 0; I < Count; ++I) {
        std::string Full = Name + std::to_string(I);
        Binding &B = bindingFor(Full);
        if (B.Reg >= 0)
          return fail(formatString("duplicate register '%%%s'", Full.c_str()));
        B.Reg = K.addReg(Full, Ty);
      }
    } else {
      Binding &B = bindingFor(Name);
      if (B.Reg >= 0)
        return fail(formatString("duplicate register '%%%s'", Name.c_str()));
      B.Reg = K.addReg(Name, Ty);
    }
  } while (accept(TokenKind::Comma));
  return expect(TokenKind::Semi, "';' after register declaration");
}

bool Parser::parseKernelVariable(Kernel &K, StateSpace Space) {
  SymbolInfo Var;
  Var.Space = Space;
  Var.Align = 0;
  if (!parseVarSuffix(Var))
    return false;
  Binding &B = bindingFor(Var.Name);
  if (Space == StateSpace::Shared) {
    if (B.Shared >= 0)
      return fail(formatString("duplicate shared var '%s'", Var.Name.c_str()));
    B.Shared = static_cast<int32_t>(K.SharedVars.size());
    K.SharedVars.push_back(std::move(Var));
  } else {
    if (B.Local < 0) // first declaration wins, matching the old linear scan
      B.Local = static_cast<int32_t>(K.LocalVars.size());
    K.LocalVars.push_back(std::move(Var));
  }
  return true;
}

/// Parses one ".reg .ty %name" formal of a .func signature, adding the
/// register to \p F and appending its id to \p Out.
bool Parser::parseFuncFormal(Kernel &F, std::vector<int32_t> &Out) {
  if (!expect(TokenKind::Dot, "'.reg'") || !acceptIdent("reg"))
    return fail("expected '.reg' in function signature");
  if (!expect(TokenKind::Dot, "'.' before formal type"))
    return false;
  if (!cur().is(TokenKind::Ident))
    return fail("expected formal type");
  Type Ty = parseTypeName(cur().Text);
  if (Ty == Type::None)
    return fail(formatString("unknown type '%s'", str(cur().Text).c_str()));
  next();
  if (!cur().is(TokenKind::Reg))
    return fail("expected formal register name");
  Binding &B = bindingFor(cur().Text);
  if (B.Reg >= 0)
    return fail(formatString("duplicate formal '%%%s'",
                             str(cur().Text).c_str()));
  B.Reg = F.addReg(str(cur().Text), Ty);
  Out.push_back(B.Reg);
  next();
  return true;
}

bool Parser::parseFunction(Module &M) {
  beginKernelScope();
  Kernel F;
  F.IsFunction = true;

  // Optional return declaration: "(.reg .ty %name)".
  if (accept(TokenKind::LParen)) {
    if (!parseFuncFormal(F, F.RetRegs))
      return false;
    if (!expect(TokenKind::RParen, "')' after return declaration"))
      return false;
  }
  if (!cur().is(TokenKind::Ident))
    return fail("expected function name");
  F.Name = str(cur().Text);
  next();
  if (!expect(TokenKind::LParen, "'(' after function name"))
    return false;
  if (!accept(TokenKind::RParen)) {
    do {
      if (!parseFuncFormal(F, F.ArgRegs))
        return false;
    } while (accept(TokenKind::Comma));
    if (!expect(TokenKind::RParen, "')' after function params"))
      return false;
  }
  if (!expect(TokenKind::LBrace, "'{' to open function body"))
    return false;
  if (!parseKernelBody(M, F))
    return false;
  F.layoutSharedVars();
  std::string Diag = F.resolveLabels();
  if (!Diag.empty())
    return fail(Diag);
  if (M.findFunction(F.Name))
    return fail(formatString("duplicate function '%s'", F.Name.c_str()));
  M.Functions.push_back(std::move(F));
  return true;
}

bool Parser::parseKernel(Module &M) {
  beginKernelScope();
  if (!cur().is(TokenKind::Ident))
    return fail("expected kernel name");
  Kernel K;
  K.Name = str(cur().Text);
  next();
  if (!parseKernelParams(K))
    return false;
  if (!expect(TokenKind::LBrace, "'{' to open kernel body"))
    return false;
  if (!parseKernelBody(M, K))
    return false;
  K.layoutSharedVars();
  std::string Diag = K.resolveLabels();
  if (!Diag.empty())
    return fail(Diag);
  M.Kernels.push_back(std::move(K));
  return true;
}

bool Parser::parseKernelBody(Module &M, Kernel &K) {
  while (!cur().is(TokenKind::RBrace)) {
    if (cur().is(TokenKind::Eof))
      return fail("unexpected end of file inside kernel body");

    if (cur().is(TokenKind::Dot)) {
      next();
      if (!cur().is(TokenKind::Ident))
        return fail("expected directive name");
      std::string_view Directive = cur().Text;
      next();
      if (Directive == "reg") {
        if (!parseRegDecl(K))
          return false;
      } else if (Directive == "shared") {
        if (!parseKernelVariable(K, StateSpace::Shared))
          return false;
      } else if (Directive == "local") {
        if (!parseKernelVariable(K, StateSpace::Local))
          return false;
      } else {
        return fail(
            formatString("unsupported body directive '.%s'",
                         str(Directive).c_str()));
      }
      continue;
    }

    // Label?
    if (cur().is(TokenKind::Ident) && peek().is(TokenKind::Colon)) {
      std::string Label(cur().Text);
      next();
      next();
      if (K.Labels.count(Label))
        return fail(formatString("duplicate label '%s'", Label.c_str()));
      K.Labels.emplace(Label, static_cast<uint32_t>(K.Body.size()));
      continue;
    }

    if (!parseInstruction(M, K))
      return false;
  }
  next(); // consume '}'
  return true;
}

bool Parser::applyModifier(Instruction &Insn, std::string_view Mod,
                           std::vector<Type> &TypesSeen) {
  Type Ty = parseTypeName(Mod);
  if (Ty != Type::None) {
    TypesSeen.push_back(Ty);
    return true;
  }
  if (Mod == "global") {
    Insn.Space = StateSpace::Global;
    return true;
  }
  if (Mod == "shared") {
    Insn.Space = StateSpace::Shared;
    return true;
  }
  if (Mod == "local") {
    Insn.Space = StateSpace::Local;
    return true;
  }
  if (Mod == "param") {
    Insn.Space = StateSpace::Param;
    return true;
  }
  if (Mod == "const") {
    Insn.Space = StateSpace::Const;
    return true;
  }
  if (Mod == "volatile") {
    Insn.Volatile = true;
    return true;
  }
  if (Mod == "uni") {
    Insn.BranchUni = true;
    return true;
  }
  if (Mod == "sync") {
    // bar.sync; also future-proof for other .sync forms.
    return true;
  }
  if (Mod == "to") {
    Insn.CvtaTo = true;
    return true;
  }
  if (Mod == "v2" || Mod == "v4") {
    Insn.VecWidth = Mod == "v2" ? 2 : 4;
    return true;
  }
  if (Mod == "ca" || Mod == "cg" || Mod == "cs" || Mod == "lu" ||
      Mod == "cv" || Mod == "wb" || Mod == "wt") {
    Insn.CacheCg = Mod == "cg";
    return true;
  }
  if (Mod == "rn" || Mod == "rz" || Mod == "rm" || Mod == "rp" ||
      Mod == "ftz" || Mod == "sat" || Mod == "approx" || Mod == "full")
    return true;
  if (Mod == "cta" || Mod == "gl" || Mod == "sys") {
    Insn.Fence = Mod == "cta"  ? FenceScopeKind::FS_Cta
                 : Mod == "gl" ? FenceScopeKind::FS_Gl
                               : FenceScopeKind::FS_Sys;
    return true;
  }
  if (Insn.Op == Opcode::Atom) {
    AtomOpKind AOp = parseAtomOpName(Mod);
    if (AOp != AtomOpKind::AO_None) {
      Insn.Atomic = AOp;
      return true;
    }
  }
  if (Insn.Op == Opcode::Setp) {
    CmpOpKind COp = parseCmpOpName(Mod);
    if (COp != CmpOpKind::CO_None) {
      Insn.Cmp = COp;
      return true;
    }
  }
  if (Mod == "lo" || Mod == "hi" || Mod == "wide") {
    Insn.MulMode = Mod == "lo"   ? MulModeKind::MM_Lo
                   : Mod == "hi" ? MulModeKind::MM_Hi
                                 : MulModeKind::MM_Wide;
    return true;
  }
  return fail(formatString("unknown instruction modifier '.%s'",
                           str(Mod).c_str()));
}

static Opcode rootOpcode(std::string_view Name, bool &IsRed) {
  IsRed = false;
  static const struct {
    const char *Name;
    Opcode Op;
  } Table[] = {
      {"nop", Opcode::Nop},       {"mov", Opcode::Mov},
      {"ld", Opcode::Ld},         {"st", Opcode::St},
      {"atom", Opcode::Atom},     {"membar", Opcode::Membar},
      {"bar", Opcode::Bar},       {"bra", Opcode::Bra},
      {"setp", Opcode::Setp},     {"selp", Opcode::Selp},
      {"add", Opcode::Add},       {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},       {"mad", Opcode::Mad},
      {"div", Opcode::Div},       {"rem", Opcode::Rem},
      {"min", Opcode::Min},       {"max", Opcode::Max},
      {"neg", Opcode::Neg},       {"abs", Opcode::Abs},
      {"and", Opcode::And},       {"or", Opcode::Or},
      {"xor", Opcode::Xor},       {"not", Opcode::Not},
      {"shl", Opcode::Shl},       {"shr", Opcode::Shr},
      {"cvt", Opcode::Cvt},       {"cvta", Opcode::Cvta},
      {"ret", Opcode::Ret},       {"exit", Opcode::Exit},
      {"call", Opcode::Call},     {"popc", Opcode::Popc},
      {"clz", Opcode::Clz},       {"brev", Opcode::Brev},
  };
  for (const auto &Entry : Table)
    if (Name == Entry.Name)
      return Entry.Op;
  if (Name == "red") {
    IsRed = true;
    return Opcode::Atom;
  }
  return Opcode::Nop;
}

bool Parser::parseInstruction(Module &M, Kernel &K) {
  Instruction Insn;
  Insn.Line = cur().Line;

  // Optional guard predicate: @%p or @!%p.
  if (accept(TokenKind::At)) {
    Insn.GuardNegated = accept(TokenKind::Bang);
    if (!cur().is(TokenKind::Reg))
      return fail("expected predicate register after '@'");
    const Binding *B = lookupBinding(cur().Text);
    if (!B || B->Reg < 0)
      return fail(formatString("unknown predicate register '%%%s'",
                               str(cur().Text).c_str()));
    Insn.GuardPred = B->Reg;
    next();
  }

  if (!cur().is(TokenKind::Ident))
    return fail("expected instruction mnemonic");
  std::string_view Root = cur().Text;
  bool IsRed = false;
  Insn.Op = rootOpcode(Root, IsRed);
  Insn.NoDest = IsRed;
  if (Insn.Op == Opcode::Nop && Root != "nop")
    return fail(formatString("unknown instruction '%s'", str(Root).c_str()));
  next();

  // Modifiers.
  std::vector<Type> TypesSeen;
  while (cur().is(TokenKind::Dot)) {
    next();
    if (!cur().is(TokenKind::Ident))
      return fail("expected modifier after '.'");
    std::string_view Mod = cur().Text;
    next();
    if (!applyModifier(Insn, Mod, TypesSeen))
      return false;
  }
  if (!TypesSeen.empty())
    Insn.Ty = TypesSeen.front();
  if (TypesSeen.size() >= 2)
    Insn.SrcTy = TypesSeen[1];

  // red.* has no destination register; keep operand layout uniform with
  // atom by inserting a placeholder dest.
  if (IsRed)
    Insn.Ops.push_back(Operand());

  // Calls have their own operand grammar:
  //   call [(%ret[, ...]),] callee [, (%arg[, ...])];
  if (Insn.Op == Opcode::Call) {
    if (!parseCallOperands(K, Insn))
      return false;
    if (!expect(TokenKind::Semi, "';' after call"))
      return false;
    K.Body.push_back(std::move(Insn));
    return true;
  }

  // Operands.
  if (!cur().is(TokenKind::Semi)) {
    do {
      if (!parseOperand(M, K, Insn))
        return false;
    } while (accept(TokenKind::Comma));
  }
  if (!expect(TokenKind::Semi, "';' after instruction"))
    return false;

  // Defaults and quick sanity fixes.
  if (Insn.Op == Opcode::Membar && Insn.Fence == FenceScopeKind::FS_None)
    Insn.Fence = FenceScopeKind::FS_Gl;

  K.Body.push_back(std::move(Insn));
  return true;
}

bool Parser::parseCallOperands(Kernel &K, Instruction &Insn) {
  (void)K;
  // Optional return-value list.
  if (accept(TokenKind::LParen)) {
    do {
      if (!cur().is(TokenKind::Reg))
        return fail("expected return register in call");
      const Binding *B = lookupBinding(cur().Text);
      if (!B || B->Reg < 0)
        return fail(formatString("unknown register '%%%s'",
                                 str(cur().Text).c_str()));
      Insn.Ops.push_back(Operand::makeReg(B->Reg));
      next();
    } while (accept(TokenKind::Comma));
    if (!expect(TokenKind::RParen, "')' after call returns"))
      return false;
    Insn.NumRets = static_cast<uint8_t>(Insn.Ops.size());
    if (!expect(TokenKind::Comma, "',' after call returns"))
      return false;
  }
  if (!cur().is(TokenKind::Ident))
    return fail("expected callee name");
  Insn.CalleeName = str(cur().Text);
  next();
  // Optional argument list.
  if (accept(TokenKind::Comma)) {
    if (!expect(TokenKind::LParen, "'(' before call arguments"))
      return false;
    do {
      if (cur().is(TokenKind::Reg)) {
        SpecialReg Special;
        if (parseSpecialRegName(cur().Text, Special)) {
          Insn.Ops.push_back(Operand::makeSpecial(Special));
        } else {
          const Binding *B = lookupBinding(cur().Text);
          if (!B || B->Reg < 0)
            return fail(formatString("unknown register '%%%s'",
                                     str(cur().Text).c_str()));
          Insn.Ops.push_back(Operand::makeReg(B->Reg));
        }
        next();
      } else if (cur().is(TokenKind::Int)) {
        Insn.Ops.push_back(Operand::makeImm(cur().IntValue));
        next();
      } else {
        return fail("expected call argument");
      }
    } while (accept(TokenKind::Comma));
    if (!expect(TokenKind::RParen, "')' after call arguments"))
      return false;
  }
  return true;
}

bool Parser::parseAddressOperand(Module &M, Kernel &K, Instruction &Insn) {
  (void)M;
  (void)K;
  // '[' already consumed.
  int32_t BaseReg = -1;
  int32_t BaseSym = -1;
  StateSpace SymSpace = StateSpace::Global;
  int64_t Offset = 0;

  if (cur().is(TokenKind::Reg)) {
    const Binding *B = lookupBinding(cur().Text);
    if (!B || B->Reg < 0)
      return fail(formatString("unknown register '%%%s'",
                               str(cur().Text).c_str()));
    BaseReg = B->Reg;
    next();
  } else if (cur().is(TokenKind::Ident)) {
    std::string_view Name = cur().Text;
    next();
    const Binding *B = lookupBinding(Name);
    if (B && B->Param >= 0) {
      BaseSym = B->Param;
      SymSpace = StateSpace::Param;
    } else if (B && B->Shared >= 0) {
      BaseSym = B->Shared;
      SymSpace = StateSpace::Shared;
    } else if (B && B->Local >= 0) {
      BaseSym = B->Local;
      SymSpace = StateSpace::Local;
    } else if (B && B->Global >= 0) {
      BaseSym = B->Global;
      SymSpace = StateSpace::Global;
    } else {
      return fail(formatString("unknown symbol '%s'", str(Name).c_str()));
    }
  } else if (cur().is(TokenKind::Int)) {
    Offset = cur().IntValue;
    next();
  } else {
    return fail("expected address base");
  }

  if (accept(TokenKind::Plus)) {
    if (!cur().is(TokenKind::Int))
      return fail("expected address offset");
    Offset += cur().IntValue;
    next();
  } else if (accept(TokenKind::Minus)) {
    if (!cur().is(TokenKind::Int))
      return fail("expected address offset");
    Offset -= cur().IntValue;
    next();
  }

  if (!expect(TokenKind::RBracket, "']'"))
    return false;

  Operand Op = Operand::makeAddr(BaseReg, BaseSym, Offset);
  Op.SymSpace = SymSpace;
  Insn.Ops.push_back(std::move(Op));
  return true;
}

bool Parser::parseOperand(Module &M, Kernel &K, Instruction &Insn) {
  if (cur().is(TokenKind::LBracket)) {
    next();
    return parseAddressOperand(M, K, Insn);
  }

  // Vector operand: {%r0, %r1[, ...]} for ld.v2/v4 and st.v2/v4.
  if (cur().is(TokenKind::LBrace)) {
    next();
    Operand Op;
    Op.Kind = Operand::OperandKind::Reg;
    do {
      if (!cur().is(TokenKind::Reg))
        return fail("expected register in vector operand");
      const Binding *B = lookupBinding(cur().Text);
      if (!B || B->Reg < 0)
        return fail(formatString("unknown register '%%%s'",
                                 str(cur().Text).c_str()));
      Op.VecRegs.push_back(B->Reg);
      next();
    } while (accept(TokenKind::Comma));
    if (!expect(TokenKind::RBrace, "'}' after vector operand"))
      return false;
    Op.Reg = Op.VecRegs.front();
    Insn.Ops.push_back(std::move(Op));
    return true;
  }

  if (cur().is(TokenKind::Reg)) {
    SpecialReg Special;
    if (parseSpecialRegName(cur().Text, Special)) {
      Insn.Ops.push_back(Operand::makeSpecial(Special));
      next();
      return true;
    }
    const Binding *B = lookupBinding(cur().Text);
    if (!B || B->Reg < 0)
      return fail(formatString("unknown register '%%%s'",
                               str(cur().Text).c_str()));
    Insn.Ops.push_back(Operand::makeReg(B->Reg));
    next();
    return true;
  }

  if (cur().is(TokenKind::Int)) {
    Insn.Ops.push_back(Operand::makeImm(cur().IntValue));
    next();
    return true;
  }

  if (cur().is(TokenKind::Float)) {
    Insn.Ops.push_back(Operand::makeFImm(cur().FloatValue));
    next();
    return true;
  }

  if (cur().is(TokenKind::Ident)) {
    std::string_view Name = cur().Text;
    if (Insn.Op == Opcode::Bra) {
      Insn.Ops.push_back(Operand::makeLabel(str(Name)));
      next();
      return true;
    }
    // A symbol used as a value (its address): shared/local var or module
    // global.
    const Binding *B = lookupBinding(Name);
    if (B && B->Shared >= 0) {
      Operand Op = Operand::makeSymbol(B->Shared);
      Op.SymSpace = StateSpace::Shared;
      Insn.Ops.push_back(std::move(Op));
      next();
      return true;
    }
    if (B && B->Local >= 0) {
      Operand Op = Operand::makeSymbol(B->Local);
      Op.SymSpace = StateSpace::Local;
      Insn.Ops.push_back(std::move(Op));
      next();
      return true;
    }
    if (B && B->Global >= 0) {
      Operand Op = Operand::makeSymbol(B->Global);
      Op.SymSpace = StateSpace::Global;
      Insn.Ops.push_back(std::move(Op));
      next();
      return true;
    }
    return fail(formatString("unknown operand symbol '%s'",
                             str(Name).c_str()));
  }

  return fail("expected operand");
}

std::unique_ptr<Module> ptx::parseOrDie(const std::string &Source) {
  Parser P(Source);
  std::unique_ptr<Module> M = P.parseModule();
  if (!M) {
    // Structured and level Error, so the message survives any log
    // configuration; the entry flushes before the abort.
    obs::Logger("ptx").error("parse-failed").kv("error", P.error());
    std::abort();
  }
  return M;
}
