//===- Verifier.cpp - structural checks on parsed PTX ---------------------===//

#include "ptx/Verifier.h"

#include "support/Format.h"

using namespace barracuda;
using namespace barracuda::ptx;
using support::formatString;

namespace {

class KernelVerifier {
public:
  KernelVerifier(const Module &M, const Kernel &K,
                 std::vector<std::string> &Diags)
      : M(M), K(K), Diags(Diags) {}

  void run() {
    for (size_t Index = 0; Index != K.Body.size(); ++Index)
      verifyInsn(K.Body[Index]);
  }

private:
  void report(const Instruction &Insn, const std::string &Message) {
    Diags.push_back(formatString("kernel '%s', line %u: %s", K.Name.c_str(),
                                 Insn.Line, Message.c_str()));
  }

  bool checkOperandCount(const Instruction &Insn, size_t Min, size_t Max) {
    if (Insn.Ops.size() >= Min && Insn.Ops.size() <= Max)
      return true;
    report(Insn, formatString("expected %zu..%zu operands, found %zu", Min,
                              Max, Insn.Ops.size()));
    return false;
  }

  bool isPredReg(const Operand &Op) const {
    return Op.isReg() &&
           K.Regs[static_cast<size_t>(Op.Reg)].Ty == Type::Pred;
  }

  bool isValueOperand(const Operand &Op) const {
    switch (Op.Kind) {
    case Operand::OperandKind::Reg:
    case Operand::OperandKind::Imm:
    case Operand::OperandKind::FImm:
    case Operand::OperandKind::Special:
    case Operand::OperandKind::Symbol:
      return true;
    default:
      return false;
    }
  }

  void verifyInsn(const Instruction &Insn) {
    if (Insn.isGuarded()) {
      if (K.Regs[static_cast<size_t>(Insn.GuardPred)].Ty != Type::Pred)
        report(Insn, "guard register is not a predicate");
    }

    switch (Insn.Op) {
    case Opcode::Nop:
    case Opcode::Ret:
    case Opcode::Exit:
    case Opcode::Membar:
      if (!Insn.Ops.empty())
        report(Insn, "instruction takes no operands");
      break;

    case Opcode::Bar:
      if (!checkOperandCount(Insn, 1, 2))
        break;
      if (!Insn.Ops[0].isImm())
        report(Insn, "bar.sync expects an immediate barrier id");
      break;

    case Opcode::Bra:
      if (!checkOperandCount(Insn, 1, 1))
        break;
      if (Insn.Ops[0].Kind != Operand::OperandKind::Label)
        report(Insn, "bra expects a label operand");
      else if (Insn.Ops[0].Target < 0)
        report(Insn, "unresolved branch target");
      break;

    case Opcode::Call:
      if (Insn.CalleeName.empty())
        report(Insn, "call without a callee name");
      if (Insn.NumRets > Insn.Ops.size())
        report(Insn, "call return count exceeds operand count");
      break;

    case Opcode::Mov:
    case Opcode::Cvt:
    case Opcode::Cvta:
    case Opcode::Neg:
    case Opcode::Abs:
    case Opcode::Not:
    case Opcode::Popc:
    case Opcode::Clz:
    case Opcode::Brev:
      if (!checkOperandCount(Insn, 2, 2))
        break;
      if (!Insn.Ops[0].isReg())
        report(Insn, "destination must be a register");
      if (!isValueOperand(Insn.Ops[1]))
        report(Insn, "source must be a value operand");
      break;

    case Opcode::Ld:
      if (!checkOperandCount(Insn, 2, 2))
        break;
      if (!Insn.Ops[0].isReg())
        report(Insn, "ld destination must be a register");
      if (!Insn.Ops[1].isAddr())
        report(Insn, "ld source must be a memory operand");
      if (Insn.Ty == Type::None)
        report(Insn, "ld requires a type suffix");
      if (Insn.VecWidth > 1 &&
          Insn.Ops[0].VecRegs.size() != Insn.VecWidth)
        report(Insn, "vector width does not match the register list");
      break;

    case Opcode::St:
      if (!checkOperandCount(Insn, 2, 2))
        break;
      if (!Insn.Ops[0].isAddr())
        report(Insn, "st destination must be a memory operand");
      if (!isValueOperand(Insn.Ops[1]))
        report(Insn, "st source must be a value operand");
      if (Insn.Ty == Type::None)
        report(Insn, "st requires a type suffix");
      if (Insn.VecWidth > 1 &&
          Insn.Ops[1].VecRegs.size() != Insn.VecWidth)
        report(Insn, "vector width does not match the register list");
      break;

    case Opcode::Atom: {
      size_t Expected = Insn.Atomic == AtomOpKind::AO_Cas ? 4 : 3;
      size_t MinOps = Insn.Atomic == AtomOpKind::AO_Inc ||
                              Insn.Atomic == AtomOpKind::AO_Dec
                          ? 3
                          : Expected;
      if (!checkOperandCount(Insn, MinOps, Expected))
        break;
      if (Insn.Atomic == AtomOpKind::AO_None)
        report(Insn, "atom requires an operation suffix");
      if (!Insn.NoDest && !Insn.Ops[0].isReg())
        report(Insn, "atom destination must be a register");
      if (!Insn.Ops[1].isAddr())
        report(Insn, "atom operand must be a memory operand");
      break;
    }

    case Opcode::Setp:
      if (!checkOperandCount(Insn, 3, 3))
        break;
      if (!isPredReg(Insn.Ops[0]))
        report(Insn, "setp destination must be a predicate register");
      if (Insn.Cmp == CmpOpKind::CO_None)
        report(Insn, "setp requires a comparison suffix");
      break;

    case Opcode::Selp:
      if (!checkOperandCount(Insn, 4, 4))
        break;
      if (!Insn.Ops[0].isReg())
        report(Insn, "selp destination must be a register");
      if (!isPredReg(Insn.Ops[3]))
        report(Insn, "selp selector must be a predicate register");
      break;

    case Opcode::Mad:
      if (!checkOperandCount(Insn, 4, 4))
        break;
      if (!Insn.Ops[0].isReg())
        report(Insn, "mad destination must be a register");
      break;

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
      if (!checkOperandCount(Insn, 3, 3))
        break;
      if (!Insn.Ops[0].isReg())
        report(Insn, "destination must be a register");
      for (size_t I = 1; I != Insn.Ops.size(); ++I)
        if (!isValueOperand(Insn.Ops[I]))
          report(Insn, "source operands must be value operands");
      break;
    }
  }

  const Module &M;
  const Kernel &K;
  std::vector<std::string> &Diags;
};

} // namespace

void ptx::verifyKernel(const Module &M, const Kernel &K,
                       std::vector<std::string> &Diags) {
  KernelVerifier(M, K, Diags).run();
}

std::vector<std::string> ptx::verifyModule(const Module &M) {
  std::vector<std::string> Diags;
  for (const Kernel &F : M.Functions)
    verifyKernel(M, F, Diags);
  for (const Kernel &K : M.Kernels)
    verifyKernel(M, K, Diags);
  return Diags;
}
