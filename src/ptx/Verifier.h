//===- Verifier.h - structural checks on parsed PTX -----------------------===//
//
// Part of the BARRACUDA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks run after parsing and after
/// instrumentation rewrites: operand counts and kinds per opcode, register
/// type agreement for predicates, resolved branch targets, and state-space
/// sanity for memory operations.
///
//===----------------------------------------------------------------------===//

#ifndef BARRACUDA_PTX_VERIFIER_H
#define BARRACUDA_PTX_VERIFIER_H

#include "ptx/Ir.h"

#include <string>
#include <vector>

namespace barracuda {
namespace ptx {

/// Verifies \p M; returns all diagnostics found (empty means valid).
std::vector<std::string> verifyModule(const Module &M);

/// Verifies one kernel; appends diagnostics to \p Diags.
void verifyKernel(const Module &M, const Kernel &K,
                  std::vector<std::string> &Diags);

} // namespace ptx
} // namespace barracuda

#endif // BARRACUDA_PTX_VERIFIER_H
