//===- Printer.h - PTX text emission ---------------------------------------===//
//
// Part of the BARRACUDA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a ptx::Module back to PTX text. Used to round-trip-test the
/// parser and to dump instrumented modules for inspection (the analogue of
/// the paper's regenerated fat-binary PTX entry).
///
//===----------------------------------------------------------------------===//

#ifndef BARRACUDA_PTX_PRINTER_H
#define BARRACUDA_PTX_PRINTER_H

#include "ptx/Ir.h"

#include <string>

namespace barracuda {
namespace ptx {

/// Renders one instruction (without trailing newline or label).
std::string printInstruction(const Module &M, const Kernel &K,
                             const Instruction &Insn);

/// Renders a whole kernel.
std::string printKernel(const Module &M, const Kernel &K);

/// Renders a whole module.
std::string printModule(const Module &M);

} // namespace ptx
} // namespace barracuda

#endif // BARRACUDA_PTX_PRINTER_H
