//===- Instrumenter.h - PTX binary instrumentation framework --------------===//
//
// Part of the BARRACUDA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary instrumentation framework of Section 4.1. Given a parsed
/// PTX module it:
///
///   * transforms predicated memory/synchronization instructions into a
///     branch plus a non-predicated instruction, so the logging hook is
///     covered by the branch;
///   * infers high-level acquire and release operations from fence
///     adjacency per Section 3.1 (membar+st = release, ld+membar =
///     acquire, fence-sandwiched atomics = acquire-release, atom.cas
///     followed by a fence = acquire, atom.exch preceded by a fence =
///     release; membar.sys counts as a global fence);
///   * attaches logging actions to every load, store, atomic, barrier and
///     potentially-divergent branch, plus branch-convergence points
///     derived from the immediate post-dominator analysis;
///   * applies the intra-basic-block redundant-logging optimization: an
///     access through a register whose value has not changed since the
///     last logged access to the same address is not logged again
///     (cleared at any synchronization operation);
///   * reports the static instrumentation statistics behind Figure 9.
///
//===----------------------------------------------------------------------===//

#ifndef BARRACUDA_INSTRUMENT_INSTRUMENTER_H
#define BARRACUDA_INSTRUMENT_INSTRUMENTER_H

#include "ptx/Cfg.h"
#include "ptx/Ir.h"
#include "trace/Record.h"

#include <memory>
#include <vector>

namespace barracuda {
namespace instrument {

/// The logging decision attached to one static instruction.
enum class LogActionKind : uint8_t {
  None,           ///< no logging hook
  Read,           ///< plain load
  Write,          ///< plain store
  Atom,           ///< standalone atomic (atm trace op)
  Acquire,        ///< inferred acquire bundle (this is the memory side)
  Release,        ///< inferred release bundle
  AcquireRelease, ///< fence-sandwiched atomic
  FencePart,      ///< a fence consumed by an adjacent bundle
  Fence,          ///< standalone fence; produces no trace operation
  Barrier,        ///< bar.sync
  Branch,         ///< potentially-divergent branch (if/else/fi logging)
};

const char *logActionName(LogActionKind Kind);

/// Per-instruction instrumentation annotation.
struct InsnAnnotation {
  LogActionKind Action = LogActionKind::None;
  trace::SyncScope Scope = trace::SyncScope::Block;
  /// Set when the unoptimized instrumentation would log this instruction
  /// but the redundant-logging optimization pruned it.
  bool Pruned = false;
  /// For Branch actions: instruction index where the warp reconverges
  /// (kernel body size = reconverge at exit).
  uint32_t ReconvPc = 0;

  bool logs() const {
    return Action != LogActionKind::None &&
           Action != LogActionKind::FencePart &&
           Action != LogActionKind::Fence && !Pruned;
  }
};

/// Static instrumentation statistics for one kernel (Figure 9 inputs).
struct InstrumentationStats {
  uint64_t StaticInsns = 0;
  uint64_t InstrumentedUnoptimized = 0;
  uint64_t InstrumentedOptimized = 0;

  double unoptimizedFraction() const {
    return StaticInsns ? static_cast<double>(InstrumentedUnoptimized) /
                             static_cast<double>(StaticInsns)
                       : 0.0;
  }
  double optimizedFraction() const {
    return StaticInsns ? static_cast<double>(InstrumentedOptimized) /
                             static_cast<double>(StaticInsns)
                       : 0.0;
  }
};

/// Instrumentation results for one kernel. Annotations run parallel to
/// Kernel::Body (after the predication transform has rewritten it).
struct KernelInstrumentation {
  std::vector<InsnAnnotation> Insns;
  InstrumentationStats Stats;
  /// The CFG built over the transformed body; owned here because the
  /// simulator also consults it for reconvergence.
  std::shared_ptr<const ptx::Cfg> Cfg;

  const InsnAnnotation &at(uint32_t Pc) const { return Insns[Pc]; }
};

/// Instrumentation results for a module, parallel to Module::Kernels.
struct ModuleInstrumentation {
  std::vector<KernelInstrumentation> Kernels;

  InstrumentationStats totalStats() const;
};

/// Instrumenter options.
struct InstrumenterOptions {
  /// Apply the intra-basic-block redundant-logging optimization.
  bool PruneRedundantLogging = true;
  /// Rewrite predicated memory/sync instructions into branch + plain op.
  bool TransformPredicated = true;
};

/// Rewrites predicated loggable instructions in \p K into an explicit
/// branch over a non-predicated instruction. Exposed for testing.
/// Returns the number of instructions transformed.
unsigned transformPredicatedInstructions(ptx::Kernel &K);

/// Instruments one kernel in place (the body may be rewritten).
KernelInstrumentation instrumentKernel(ptx::Kernel &K,
                                       const InstrumenterOptions &Options);

/// Instruments every kernel of \p M in place.
ModuleInstrumentation instrumentModule(ptx::Module &M,
                                       const InstrumenterOptions &Options);

} // namespace instrument
} // namespace barracuda

#endif // BARRACUDA_INSTRUMENT_INSTRUMENTER_H
