//===- Instrumenter.cpp - PTX binary instrumentation framework ------------===//

#include "instrument/Instrumenter.h"

#include "support/Format.h"

#include <cassert>
#include <map>

using namespace barracuda;
using namespace barracuda::instrument;
using namespace barracuda::ptx;

const char *instrument::logActionName(LogActionKind Kind) {
  switch (Kind) {
  case LogActionKind::None:
    return "none";
  case LogActionKind::Read:
    return "read";
  case LogActionKind::Write:
    return "write";
  case LogActionKind::Atom:
    return "atom";
  case LogActionKind::Acquire:
    return "acquire";
  case LogActionKind::Release:
    return "release";
  case LogActionKind::AcquireRelease:
    return "acquire-release";
  case LogActionKind::FencePart:
    return "fence-part";
  case LogActionKind::Fence:
    return "fence";
  case LogActionKind::Barrier:
    return "barrier";
  case LogActionKind::Branch:
    return "branch";
  }
  return "none";
}

/// True for instructions whose logging hook must be covered by a branch
/// when predicated: everything that can produce a trace operation.
static bool isLoggableWhenPredicated(const Instruction &Insn) {
  if (Insn.isFence() || Insn.isBarrier())
    return true;
  if (!Insn.isMemAccess())
    return false;
  return Insn.Space == StateSpace::Global ||
         Insn.Space == StateSpace::Shared ||
         Insn.Space == StateSpace::Generic;
}

unsigned instrument::transformPredicatedInstructions(Kernel &K) {
  bool AnyGuarded = false;
  for (const Instruction &Insn : K.Body)
    if (Insn.isGuarded() && !Insn.isBranch() &&
        isLoggableWhenPredicated(Insn))
      AnyGuarded = true;
  if (!AnyGuarded)
    return 0;

  std::vector<Instruction> NewBody;
  NewBody.reserve(K.Body.size() + 8);
  std::vector<uint32_t> Remap(K.Body.size() + 1, 0);
  struct Fixup {
    size_t BranchIndex; ///< index of the inserted branch in NewBody
    size_t TargetIndex; ///< index it must jump to in NewBody
  };
  std::vector<Fixup> Fixups;
  std::vector<std::pair<std::string, uint32_t>> NewLabels;
  unsigned Transformed = 0;

  for (size_t Index = 0; Index != K.Body.size(); ++Index) {
    const Instruction &Insn = K.Body[Index];
    Remap[Index] = static_cast<uint32_t>(NewBody.size());
    if (!(Insn.isGuarded() && !Insn.isBranch() &&
          isLoggableWhenPredicated(Insn))) {
      NewBody.push_back(Insn);
      continue;
    }

    std::string SkipLabel =
        support::formatString("__bcuda_skip_%u", Transformed);
    Instruction Branch;
    Branch.Op = Opcode::Bra;
    Branch.Line = Insn.Line;
    Branch.GuardPred = Insn.GuardPred;
    Branch.GuardNegated = !Insn.GuardNegated;
    Branch.Ops.push_back(Operand::makeLabel(SkipLabel));
    size_t BranchIndex = NewBody.size();
    NewBody.push_back(std::move(Branch));

    Instruction Plain = Insn;
    Plain.GuardPred = -1;
    Plain.GuardNegated = false;
    NewBody.push_back(std::move(Plain));

    Fixups.push_back(Fixup{BranchIndex, NewBody.size()});
    NewLabels.emplace_back(SkipLabel,
                           static_cast<uint32_t>(NewBody.size()));
    ++Transformed;
  }
  Remap[K.Body.size()] = static_cast<uint32_t>(NewBody.size());

  // Remap pre-existing labels and branch targets.
  for (auto &[Name, Target] : K.Labels)
    Target = Remap[Target];
  for (Instruction &Insn : NewBody) {
    if (Insn.Op != Opcode::Bra)
      continue;
    Operand &Op = Insn.Ops[0];
    if (Op.Target >= 0)
      Op.Target = static_cast<int32_t>(
          Remap[static_cast<uint32_t>(Op.Target)]);
  }
  for (const Fixup &F : Fixups)
    NewBody[F.BranchIndex].Ops[0].Target =
        static_cast<int32_t>(F.TargetIndex);
  for (auto &[Name, Target] : NewLabels) {
    assert(!K.Labels.count(Name) && "skip label collides");
    K.Labels.emplace(std::move(Name), Target);
  }

  K.Body = std::move(NewBody);
  return Transformed;
}

namespace {

/// Scope of a fence instruction mapped to trace scope. System-level
/// fences are treated as global since we focus on intra-kernel races.
trace::SyncScope scopeOfFence(const Instruction &Fence) {
  assert(Fence.isFence() && "not a fence");
  return Fence.Fence == FenceScopeKind::FS_Cta ? trace::SyncScope::Block
                                               : trace::SyncScope::Global;
}

bool isGlobalScope(const Instruction &Fence) {
  return scopeOfFence(Fence) == trace::SyncScope::Global;
}

/// Infers acquire/release bundles and base actions over the linear
/// instruction layout.
///
/// Adjacency policy: "immediately preceded/followed by a fence" is
/// interpreted over the static layout, skipping a short window of
/// neutral (non-memory) instructions, and — in the forward direction —
/// branches. This matches how nvcc lays out the idioms the paper tuned
/// its inference on: a spinlock acquire compiles to
///
///   SPIN: atom.cas ...; setp ...; @%p bra SPIN; membar;
///
/// where the fence follows the cas with a compare and a loop branch in
/// between, and an acquire-flag spin reads the flag the same way.
class BlockAnnotator {
public:
  BlockAnnotator(const Kernel &K, std::vector<InsnAnnotation> &Annotations)
      : K(K), First(0), End(static_cast<uint32_t>(K.Body.size())),
        Annotations(Annotations) {}

  void annotate() {
    for (uint32_t Index = First; Index != End; ++Index)
      annotateInsn(Index);
  }

private:
  /// How many neutral instructions a fence may be separated by.
  static constexpr uint32_t FenceWindow = 4;

  const Instruction &insn(uint32_t Index) const { return K.Body[Index]; }

  /// Instructions that do not break a fence bundle.
  static bool isNeutral(const Instruction &Insn) {
    switch (Insn.Op) {
    case Opcode::Ld:
    case Opcode::St:
    case Opcode::Atom:
    case Opcode::Membar:
    case Opcode::Bar:
    case Opcode::Bra:
    case Opcode::Ret:
    case Opcode::Exit:
      return false;
    default:
      return true;
    }
  }

  /// Index of a fence within the window after \p Index, or 0 if none.
  /// Only *conditional* branches may be skipped (the spin-loop back
  /// edge); an unconditional branch ends the path, and whatever follows
  /// it in layout order belongs to different code.
  uint32_t fenceAfter(uint32_t Index, bool AllowBranches) const {
    uint32_t Skipped = 0;
    for (uint32_t J = Index + 1; J < End && Skipped <= FenceWindow; ++J) {
      const Instruction &Next = insn(J);
      if (Next.isFence())
        return J;
      if (isNeutral(Next) ||
          (AllowBranches && Next.isBranch() && Next.isGuarded())) {
        ++Skipped;
        continue;
      }
      break;
    }
    return 0;
  }

  /// Index+1 of a fence within the window before \p Index, or 0 if none.
  uint32_t fenceBefore(uint32_t Index) const {
    uint32_t Skipped = 0;
    for (uint32_t J = Index; J > First && Skipped <= FenceWindow; --J) {
      const Instruction &Prev = insn(J - 1);
      if (Prev.isFence())
        return J; // 1-based so that 0 means "none"
      if (isNeutral(Prev)) {
        ++Skipped;
        continue;
      }
      break;
    }
    return 0;
  }

  /// True if the access is in a logged space (global/shared/generic).
  static bool inLoggedSpace(const Instruction &Insn) {
    return Insn.Space == StateSpace::Global ||
           Insn.Space == StateSpace::Shared ||
           Insn.Space == StateSpace::Generic;
  }

  void annotateInsn(uint32_t Index) {
    const Instruction &Insn = insn(Index);
    InsnAnnotation &Note = Annotations[Index];

    if (Insn.isFence()) {
      // May already have been claimed by a neighbouring bundle.
      if (Note.Action == LogActionKind::None)
        Note.Action = LogActionKind::Fence;
      return;
    }

    if (Insn.isBarrier()) {
      Note.Action = LogActionKind::Barrier;
      return;
    }

    if (Insn.isAtomic() && inLoggedSpace(Insn)) {
      uint32_t Before = fenceBefore(Index); // fence at Before-1 if nonzero
      uint32_t After = fenceAfter(Index, /*AllowBranches=*/true);
      if (Before && After) {
        // A fence-sandwiched atomic acts as both acquire and release.
        Note.Action = LogActionKind::AcquireRelease;
        Note.Scope =
            (isGlobalScope(insn(Before - 1)) || isGlobalScope(insn(After)))
                ? trace::SyncScope::Global
                : trace::SyncScope::Block;
        Annotations[Before - 1].Action = LogActionKind::FencePart;
        Annotations[After].Action = LogActionKind::FencePart;
        return;
      }
      // atom.cas is commonly a lock acquire; with a trailing fence we
      // treat the pair as an acquire.
      if (Insn.Atomic == AtomOpKind::AO_Cas && After) {
        Note.Action = LogActionKind::Acquire;
        Note.Scope = scopeOfFence(insn(After));
        Annotations[After].Action = LogActionKind::FencePart;
        return;
      }
      // atom.exch is commonly a lock release; with a leading fence we
      // treat the pair as a release.
      if (Insn.Atomic == AtomOpKind::AO_Exch && Before) {
        Note.Action = LogActionKind::Release;
        Note.Scope = scopeOfFence(insn(Before - 1));
        Annotations[Before - 1].Action = LogActionKind::FencePart;
        return;
      }
      Note.Action = LogActionKind::Atom;
      return;
    }

    if (Insn.isStore() && inLoggedSpace(Insn)) {
      if (uint32_t Before = fenceBefore(Index)) {
        Note.Action = LogActionKind::Release;
        Note.Scope = scopeOfFence(insn(Before - 1));
        Annotations[Before - 1].Action = LogActionKind::FencePart;
        return;
      }
      Note.Action = LogActionKind::Write;
      return;
    }

    if (Insn.isLoad() && inLoggedSpace(Insn)) {
      if (uint32_t After = fenceAfter(Index, /*AllowBranches=*/true)) {
        Note.Action = LogActionKind::Acquire;
        Note.Scope = scopeOfFence(insn(After));
        Annotations[After].Action = LogActionKind::FencePart;
        return;
      }
      Note.Action = LogActionKind::Read;
      return;
    }
  }

  const Kernel &K;
  uint32_t First, End;
  std::vector<InsnAnnotation> &Annotations;
};

/// The RedCard-style intra-basic-block redundant-logging optimization.
class RedundancyPruner {
public:
  RedundancyPruner(const Kernel &K,
                   std::vector<InsnAnnotation> &Annotations)
      : K(K), Annotations(Annotations) {}

  void pruneBlock(uint32_t First, uint32_t End) {
    Logged.clear();
    for (uint32_t Index = First; Index != End; ++Index)
      visit(Index);
  }

private:
  /// Identity of a static address expression.
  struct AddrKey {
    StateSpace Space;
    int32_t BaseReg;
    int32_t BaseSym;
    StateSpace SymSpace;
    int64_t Offset;

    bool operator<(const AddrKey &Other) const {
      return std::tie(Space, BaseReg, BaseSym, SymSpace, Offset) <
             std::tie(Other.Space, Other.BaseReg, Other.BaseSym,
                      Other.SymSpace, Other.Offset);
    }
  };
  enum class Strength : uint8_t { ReadLogged = 1, WriteLogged = 2 };

  void visit(uint32_t Index) {
    const Instruction &Insn = K.Body[Index];
    InsnAnnotation &Note = Annotations[Index];

    // Any synchronization operation can change the thread's logical time
    // and its ordering with other threads; accesses after it must be
    // re-logged.
    switch (Note.Action) {
    case LogActionKind::Atom:
    case LogActionKind::Acquire:
    case LogActionKind::Release:
    case LogActionKind::AcquireRelease:
    case LogActionKind::Fence:
    case LogActionKind::FencePart:
    case LogActionKind::Barrier:
      Logged.clear();
      invalidateDefs(Insn);
      return;
    default:
      break;
    }

    if ((Note.Action == LogActionKind::Read ||
         Note.Action == LogActionKind::Write) &&
        !Insn.Volatile) {
      int MemIndex = Insn.memOperandIndex();
      assert(MemIndex >= 0 && "memory action without memory operand");
      const Operand &Mem = Insn.Ops[static_cast<size_t>(MemIndex)];
      AddrKey Key{Insn.Space, Mem.Reg, Mem.Sym, Mem.SymSpace, Mem.Imm};
      Strength Needed = Note.Action == LogActionKind::Write
                            ? Strength::WriteLogged
                            : Strength::ReadLogged;
      auto It = Logged.find(Key);
      if (It != Logged.end() && It->second >= Needed)
        Note.Pruned = true;
      else
        Logged[Key] = std::max(It == Logged.end() ? Needed : It->second,
                               Needed);
    }

    invalidateDefs(Insn);
  }

  /// Drops cached address expressions whose base register is redefined
  /// by \p Insn.
  void invalidateDefs(const Instruction &Insn) {
    int32_t DefReg = -1;
    switch (Insn.Op) {
    case Opcode::St:
    case Opcode::Bra:
    case Opcode::Bar:
    case Opcode::Membar:
    case Opcode::Ret:
    case Opcode::Exit:
    case Opcode::Nop:
      return;
    default:
      if (!Insn.Ops.empty() && Insn.Ops[0].isReg())
        DefReg = Insn.Ops[0].Reg;
      break;
    }
    if (DefReg < 0)
      return;
    for (auto It = Logged.begin(); It != Logged.end();) {
      if (It->first.BaseReg == DefReg)
        It = Logged.erase(It);
      else
        ++It;
    }
  }

  const Kernel &K;
  std::vector<InsnAnnotation> &Annotations;
  std::map<AddrKey, Strength> Logged;
};

} // namespace

KernelInstrumentation
instrument::instrumentKernel(Kernel &K, const InstrumenterOptions &Options) {
  KernelInstrumentation Result;
  if (Options.TransformPredicated)
    transformPredicatedInstructions(K);

  Result.Insns.assign(K.Body.size(), InsnAnnotation());
  Result.Cfg = std::make_shared<const ptx::Cfg>(K);

  BlockAnnotator(K, Result.Insns).annotate();

  // Branch logging: any guarded branch can diverge. bra.uni and unguarded
  // branches are warp-uniform by construction and are not instrumented.
  for (uint32_t Index = 0; Index != K.Body.size(); ++Index) {
    const Instruction &Insn = K.Body[Index];
    if (Insn.isBranch() && Insn.isGuarded() && !Insn.BranchUni) {
      Result.Insns[Index].Action = LogActionKind::Branch;
      Result.Insns[Index].ReconvPc = Result.Cfg->reconvergencePoint(Index);
    }
  }

  if (Options.PruneRedundantLogging) {
    RedundancyPruner Pruner(K, Result.Insns);
    for (const ptx::BasicBlock &Block : Result.Cfg->blocks())
      Pruner.pruneBlock(Block.First, Block.End);
  }

  InstrumentationStats &Stats = Result.Stats;
  Stats.StaticInsns = K.Body.size();
  for (const InsnAnnotation &Note : Result.Insns) {
    switch (Note.Action) {
    case LogActionKind::Read:
    case LogActionKind::Write:
    case LogActionKind::Atom:
    case LogActionKind::Acquire:
    case LogActionKind::Release:
    case LogActionKind::AcquireRelease:
    case LogActionKind::Barrier:
    case LogActionKind::Branch:
      ++Stats.InstrumentedUnoptimized;
      if (!Note.Pruned)
        ++Stats.InstrumentedOptimized;
      break;
    default:
      break;
    }
  }
  return Result;
}

ModuleInstrumentation
instrument::instrumentModule(Module &M, const InstrumenterOptions &Options) {
  ModuleInstrumentation Result;
  Result.Kernels.reserve(M.Kernels.size());
  for (Kernel &K : M.Kernels)
    Result.Kernels.push_back(instrumentKernel(K, Options));
  return Result;
}

InstrumentationStats ModuleInstrumentation::totalStats() const {
  InstrumentationStats Total;
  for (const KernelInstrumentation &K : Kernels) {
    Total.StaticInsns += K.Stats.StaticInsns;
    Total.InstrumentedUnoptimized += K.Stats.InstrumentedUnoptimized;
    Total.InstrumentedOptimized += K.Stats.InstrumentedOptimized;
  }
  return Total;
}
