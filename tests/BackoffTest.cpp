//===- BackoffTest.cpp - retry backoff and cancellation primitives ---------===//

#include "support/Backoff.h"
#include "support/Cancel.h"
#include "support/Error.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

using namespace barracuda;
using std::chrono::milliseconds;

namespace {

// --- RetryBackoff ---------------------------------------------------------

TEST(RetryBackoff, JitterStaysInsideTheEqualJitterWindow) {
  support::RetryBackoff Policy(milliseconds(10), milliseconds(2000));
  for (unsigned Attempt = 0; Attempt != 12; ++Attempt) {
    uint64_t Exp = 10ull << Attempt;
    if (Exp > 2000)
      Exp = 2000;
    for (int Draw = 0; Draw != 16; ++Draw) {
      uint64_t Delay =
          static_cast<uint64_t>(Policy.nextDelay(Attempt).count());
      EXPECT_GE(Delay, Exp / 2) << "attempt " << Attempt;
      EXPECT_LE(Delay, Exp) << "attempt " << Attempt;
    }
  }
}

TEST(RetryBackoff, CapsAtMaxForLargeAttempts) {
  support::RetryBackoff Policy(milliseconds(100), milliseconds(400));
  // 100 * 2^attempt overflows uint64 well before attempt 200; the cap
  // must hold anyway.
  for (unsigned Attempt : {2u, 3u, 10u, 63u, 200u}) {
    uint64_t Delay =
        static_cast<uint64_t>(Policy.nextDelay(Attempt).count());
    EXPECT_GE(Delay, 200u);
    EXPECT_LE(Delay, 400u);
  }
}

TEST(RetryBackoff, GrowthIsMonotoneInTheWindowLowerBound) {
  // The jittered draws themselves are not monotone, but the window's
  // floor (Exp/2) doubles per attempt until the cap — so a later
  // attempt's minimum delay must dominate an earlier attempt's floor.
  support::RetryBackoff Policy(milliseconds(10), milliseconds(10000));
  uint64_t PrevFloor = 0;
  for (unsigned Attempt = 0; Attempt != 8; ++Attempt) {
    uint64_t Delay =
        static_cast<uint64_t>(Policy.nextDelay(Attempt).count());
    EXPECT_GE(Delay, PrevFloor);
    PrevFloor = (10ull << Attempt) / 2;
  }
}

TEST(RetryBackoff, DeterministicPerSeed) {
  support::RetryBackoff A(milliseconds(10), milliseconds(2000), 42);
  support::RetryBackoff B(milliseconds(10), milliseconds(2000), 42);
  std::vector<uint64_t> SeqA, SeqB;
  for (unsigned Attempt = 0; Attempt != 10; ++Attempt) {
    SeqA.push_back(static_cast<uint64_t>(A.nextDelay(Attempt).count()));
    SeqB.push_back(static_cast<uint64_t>(B.nextDelay(Attempt).count()));
  }
  EXPECT_EQ(SeqA, SeqB);
}

TEST(RetryBackoff, DifferentSeedsProduceDifferentJitter) {
  support::RetryBackoff A(milliseconds(100), milliseconds(1u << 20), 1);
  support::RetryBackoff B(milliseconds(100), milliseconds(1u << 20), 2);
  // With a wide window the chance all ten draws collide is negligible;
  // any single difference proves the streams are seed-dependent.
  bool Differed = false;
  for (unsigned Attempt = 4; Attempt != 14 && !Differed; ++Attempt)
    Differed = A.nextDelay(Attempt) != B.nextDelay(Attempt);
  EXPECT_TRUE(Differed);
}

TEST(RetryBackoff, TinyBaseDoesNotUnderflow) {
  support::RetryBackoff Policy(milliseconds(1), milliseconds(8));
  EXPECT_EQ(Policy.nextDelay(0).count(), 1);
  for (int Draw = 0; Draw != 8; ++Draw) {
    uint64_t Delay = static_cast<uint64_t>(Policy.nextDelay(1).count());
    EXPECT_GE(Delay, 1u);
    EXPECT_LE(Delay, 2u);
  }
}

// --- CancelToken ----------------------------------------------------------

TEST(CancelToken, StartsLive) {
  support::CancelToken Token;
  EXPECT_FALSE(Token.tripped());
  EXPECT_FALSE(Token.hasDeadline());
  EXPECT_EQ(Token.state(), support::ErrorCode::Ok);
}

TEST(CancelToken, CancelLatchesOnceAndIsIdempotent) {
  support::CancelToken Token;
  Token.cancel();
  EXPECT_TRUE(Token.tripped());
  EXPECT_EQ(Token.state(), support::ErrorCode::Cancelled);
  Token.cancel(); // second revoke keeps the verdict
  EXPECT_EQ(Token.state(), support::ErrorCode::Cancelled);
}

TEST(CancelToken, ExplicitCancelBeatsAnExpiredDeadline) {
  support::CancelToken Token;
  Token.armDeadline(1);
  Token.cancel();
  std::this_thread::sleep_for(milliseconds(5));
  // The deadline has long passed, but cancel() latched first.
  EXPECT_EQ(Token.state(), support::ErrorCode::Cancelled);
}

TEST(CancelToken, DeadlineTripsAtAPollPoint) {
  support::CancelToken Token;
  Token.armDeadline(1);
  EXPECT_TRUE(Token.hasDeadline());
  std::this_thread::sleep_for(milliseconds(10));
  // tripped() never consults the clock; only state() latches.
  EXPECT_FALSE(Token.tripped());
  EXPECT_EQ(Token.state(), support::ErrorCode::DeadlineExceeded);
  EXPECT_TRUE(Token.tripped());
}

TEST(CancelToken, ZeroDeadlineIsANoOp) {
  support::CancelToken Token;
  Token.armDeadline(0);
  EXPECT_FALSE(Token.hasDeadline());
  EXPECT_EQ(Token.state(), support::ErrorCode::Ok);
}

TEST(CancelToken, FirstArmedDeadlineWins) {
  support::CancelToken Token;
  Token.armDeadline(1);
  Token.armDeadline(60000); // later re-arm must not extend the budget
  std::this_thread::sleep_for(milliseconds(10));
  EXPECT_EQ(Token.state(), support::ErrorCode::DeadlineExceeded);
}

TEST(CancelToken, FarDeadlineStaysOk) {
  support::CancelToken Token;
  Token.armDeadline(60000);
  EXPECT_EQ(Token.state(), support::ErrorCode::Ok);
  EXPECT_FALSE(Token.tripped());
}

TEST(CancelToken, ConcurrentCancelAndPollAgreeOnOneVerdict) {
  // Hammer one token from cancellers and pollers at once: every
  // observer must settle on the same single terminal code.
  support::CancelToken Token;
  Token.armDeadline(1);
  std::vector<support::ErrorCode> Seen(4, support::ErrorCode::Ok);
  std::vector<std::thread> Threads;
  for (int I = 0; I != 4; ++I)
    Threads.emplace_back([&Token, &Seen, I] {
      if (I == 0)
        Token.cancel();
      support::ErrorCode Code = Token.state();
      while (Code == support::ErrorCode::Ok)
        Code = Token.state();
      Seen[static_cast<size_t>(I)] = Code;
    });
  for (std::thread &T : Threads)
    T.join();
  for (int I = 1; I != 4; ++I)
    EXPECT_EQ(Seen[static_cast<size_t>(I)], Seen[0]);
  EXPECT_TRUE(Seen[0] == support::ErrorCode::Cancelled ||
              Seen[0] == support::ErrorCode::DeadlineExceeded);
}

} // namespace
