//===- ObsTest.cpp - observability layer -----------------------------------===//
//
// The observability layer's contract: log2 histogram bucketing at its
// edges, counters that survive concurrent increments, a registry whose
// instruments have stable addresses across reset(), trace output that is
// well-formed Chrome Trace Event JSON, and a RunReport document whose
// schema round-trips through a parser.
//
//===----------------------------------------------------------------------===//

#include "barracuda/RunReport.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Cli.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace barracuda;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON parser — just enough to verify well-formedness and read
// back values the writers emitted. Throws std::runtime_error on garbage.
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool Bool_ = false;
  double Number = 0;
  std::string Str;
  std::vector<JsonValue> Array;
  std::map<std::string, JsonValue> Object;

  const JsonValue &at(const std::string &Key) const {
    auto It = Object.find(Key);
    if (It == Object.end())
      throw std::runtime_error("missing key " + Key);
    return It->second;
  }
  bool has(const std::string &Key) const {
    return Object.count(Key) != 0;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  JsonValue parse() {
    JsonValue Value = parseValue();
    skipSpace();
    if (Pos != Text.size())
      throw std::runtime_error("trailing content");
    return Value;
  }

private:
  void skipSpace() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  char peek() {
    skipSpace();
    if (Pos >= Text.size())
      throw std::runtime_error("unexpected end");
    return Text[Pos];
  }

  void expect(char C) {
    if (peek() != C)
      throw std::runtime_error(std::string("expected ") + C);
    ++Pos;
  }

  bool consume(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  JsonValue parseValue() {
    char C = peek();
    JsonValue Value;
    if (C == '{') {
      ++Pos;
      Value.K = JsonValue::Kind::Object;
      if (peek() == '}') {
        ++Pos;
        return Value;
      }
      while (true) {
        std::string Key = parseString();
        expect(':');
        Value.Object[Key] = parseValue();
        if (peek() == ',') {
          ++Pos;
          continue;
        }
        expect('}');
        return Value;
      }
    }
    if (C == '[') {
      ++Pos;
      Value.K = JsonValue::Kind::Array;
      if (peek() == ']') {
        ++Pos;
        return Value;
      }
      while (true) {
        Value.Array.push_back(parseValue());
        if (peek() == ',') {
          ++Pos;
          continue;
        }
        expect(']');
        return Value;
      }
    }
    if (C == '"') {
      Value.K = JsonValue::Kind::String;
      Value.Str = parseString();
      return Value;
    }
    skipSpace();
    if (consume("true")) {
      Value.K = JsonValue::Kind::Bool;
      Value.Bool_ = true;
      return Value;
    }
    if (consume("false")) {
      Value.K = JsonValue::Kind::Bool;
      return Value;
    }
    if (consume("null"))
      return Value;
    // Number.
    size_t End = Pos;
    while (End < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[End])) ||
            Text[End] == '-' || Text[End] == '+' || Text[End] == '.' ||
            Text[End] == 'e' || Text[End] == 'E'))
      ++End;
    if (End == Pos)
      throw std::runtime_error("bad value");
    Value.K = JsonValue::Kind::Number;
    Value.Number = std::stod(Text.substr(Pos, End - Pos));
    Pos = End;
    return Value;
  }

  std::string parseString() {
    expect('"');
    std::string Out;
    while (true) {
      if (Pos >= Text.size())
        throw std::runtime_error("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C == '\\') {
        if (Pos >= Text.size())
          throw std::runtime_error("bad escape");
        char E = Text[Pos++];
        switch (E) {
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u':
          if (Pos + 4 > Text.size())
            throw std::runtime_error("bad \\u escape");
          Pos += 4;
          Out += '?';
          break;
        default:
          Out += E;
          break;
        }
        continue;
      }
      Out += C;
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

JsonValue parseJson(const std::string &Text) {
  return JsonParser(Text).parse();
}

//===----------------------------------------------------------------------===//
// Histogram bucketing
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketEdges) {
  using obs::Histogram;
  // Bucket = bit width: 0 is alone, then [2^(k-1), 2^k) shares bucket k.
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 1u);
  EXPECT_EQ(Histogram::bucketFor(2), 2u);
  EXPECT_EQ(Histogram::bucketFor(3), 2u);
  EXPECT_EQ(Histogram::bucketFor(4), 3u);
  EXPECT_EQ(Histogram::bucketFor(7), 3u);
  EXPECT_EQ(Histogram::bucketFor(8), 4u);
  EXPECT_EQ(Histogram::bucketFor((1ULL << 32) - 1), 32u);
  EXPECT_EQ(Histogram::bucketFor(1ULL << 32), 33u);
  EXPECT_EQ(Histogram::bucketFor(UINT64_MAX), 64u);
  static_assert(Histogram::NumBuckets == 65,
                "one bucket per bit width plus zero");

  // Lower bounds invert bucketFor at every edge.
  EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::bucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::bucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::bucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::bucketLowerBound(64), 1ULL << 63);
  for (unsigned I = 0; I != Histogram::NumBuckets; ++I)
    EXPECT_EQ(Histogram::bucketFor(Histogram::bucketLowerBound(I)), I);
}

TEST(Histogram, CountsAndSum) {
  obs::Histogram H;
  H.record(0);
  H.record(1);
  H.record(5);
  H.record(5);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 11u);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(3), 2u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
}

//===----------------------------------------------------------------------===//
// Counters, gauges, registry
//===----------------------------------------------------------------------===//

TEST(Metrics, ConcurrentCounterIncrements) {
  // Run under the TSan preset too: relaxed atomic adds must neither race
  // nor lose increments.
  obs::Registry Registry;
  obs::Counter &C = Registry.counter("test.hits");
  obs::Histogram &H = Registry.histogram("test.sizes");
  constexpr unsigned NumThreads = 8;
  constexpr uint64_t PerThread = 100000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&C, &H] {
      for (uint64_t I = 0; I != PerThread; ++I) {
        C.add();
        H.record(I & 1023);
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), NumThreads * PerThread);
  EXPECT_EQ(H.count(), NumThreads * PerThread);
}

TEST(Metrics, RegistryStableAddressesAcrossReset) {
  obs::Registry Registry;
  obs::Counter *C = &Registry.counter("a.counter");
  obs::Gauge *G = &Registry.gauge("a.gauge");
  obs::Histogram *H = &Registry.histogram("a.histogram");
  C->add(7);
  G->set(-3);
  H->record(42);
  // Same name returns the same instrument.
  EXPECT_EQ(&Registry.counter("a.counter"), C);
  EXPECT_EQ(&Registry.gauge("a.gauge"), G);
  EXPECT_EQ(&Registry.histogram("a.histogram"), H);
  Registry.reset();
  // Reset zeroes values but cached pointers stay usable.
  EXPECT_EQ(C->value(), 0u);
  EXPECT_EQ(G->value(), 0);
  EXPECT_EQ(H->count(), 0u);
  C->add(1);
  EXPECT_EQ(Registry.counter("a.counter").value(), 1u);
}

TEST(Metrics, GaugeMax) {
  obs::Gauge G;
  G.updateMax(5);
  G.updateMax(3);
  EXPECT_EQ(G.value(), 5);
  G.updateMax(9);
  EXPECT_EQ(G.value(), 9);
}

TEST(Metrics, SnapshotAndJson) {
  obs::Registry Registry;
  Registry.counter("z.last").add(2);
  Registry.counter("a.first").add(1);
  Registry.histogram("m.hist").record(10);
  std::vector<obs::MetricSample> Samples = Registry.snapshot();
  ASSERT_EQ(Samples.size(), 3u);
  // Name-sorted.
  EXPECT_EQ(Samples[0].Name, "a.first");
  EXPECT_EQ(Samples[2].Name, "z.last");

  support::json::Writer W;
  Registry.writeJson(W);
  JsonValue Doc = parseJson(W.take());
  EXPECT_EQ(Doc.at("a.first").Number, 1.0);
  EXPECT_EQ(Doc.at("z.last").Number, 2.0);
  EXPECT_EQ(Doc.at("m.hist").at("count").Number, 1.0);
  EXPECT_EQ(Doc.at("m.hist").at("sum").Number, 10.0);
}

//===----------------------------------------------------------------------===//
// Trace recorder
//===----------------------------------------------------------------------===//

TEST(Trace, WellFormedChromeTraceJson) {
  obs::TraceRecorder Recorder;
  uint32_t Worker = Recorder.track("engine worker 0");
  uint32_t Device = Recorder.track("device");
  EXPECT_NE(Worker, Device);
  // Track registration dedupes by name.
  EXPECT_EQ(Recorder.track("device"), Device);

  Recorder.complete(Device, "execute k", "sim", 10, 250);
  Recorder.complete(Worker, "drain 1", "engine", 20, 40);
  Recorder.instant(Worker, "wake", "engine");
  {
    obs::Span S(&Recorder, Device, "drain k", "session");
  }
  EXPECT_EQ(Recorder.eventCount(), 4u);

  JsonValue Doc = parseJson(Recorder.json());
  const std::vector<JsonValue> &Events = Doc.at("traceEvents").Array;
  // 2 thread_name metadata events + 4 recorded events.
  ASSERT_EQ(Events.size(), 6u);
  unsigned Metadata = 0, Complete = 0, Instant = 0;
  for (const JsonValue &Event : Events) {
    const std::string &Phase = Event.at("ph").Str;
    if (Phase == "M") {
      ++Metadata;
      EXPECT_EQ(Event.at("name").Str, "thread_name");
      EXPECT_TRUE(Event.at("args").has("name"));
    } else if (Phase == "X") {
      ++Complete;
      EXPECT_TRUE(Event.has("dur"));
      EXPECT_GE(Event.at("dur").Number, 0.0);
    } else if (Phase == "i") {
      ++Instant;
    }
    EXPECT_TRUE(Event.has("pid"));
    EXPECT_TRUE(Event.has("tid"));
  }
  EXPECT_EQ(Metadata, 2u);
  EXPECT_EQ(Complete, 3u);
  EXPECT_EQ(Instant, 1u);
}

TEST(Trace, NullRecorderSpansAreFree) {
  // The disabled path: no recorder, no events, no crashes.
  obs::Span S(nullptr, 0, "nothing", "nowhere");
  S.close();
  S.close();
}

TEST(Trace, NegativeDurationClamped) {
  obs::TraceRecorder Recorder;
  uint32_t T = Recorder.track("t");
  Recorder.complete(T, "backwards", "test", 100, 50);
  JsonValue Doc = parseJson(Recorder.json());
  for (const JsonValue &Event : Doc.at("traceEvents").Array)
    if (Event.at("ph").Str == "X") {
      EXPECT_EQ(Event.at("dur").Number, 0.0);
    }
}

//===----------------------------------------------------------------------===//
// RunReport schema
//===----------------------------------------------------------------------===//

TEST(RunReportTest, SchemaRoundTrip) {
  RunReport Report;
  Report.Launch.Kernel = "k";
  Report.Launch.Instrumented = true;
  Report.Launch.ThreadsLaunched = 256;
  Report.Launch.RecordsLogged = 28;
  Report.Records.Processed = 28;
  Report.Records.Memory = 16;
  Report.Detector.HotPath.FastPathHits = 24;
  Report.Detector.Formats.Samples[0] = 16;
  Report.Engine.NumQueues = 4;
  Report.Engine.WatermarkWaitNanos = 12345;
  Report.Static.StaticInsns = 13;
  Report.Static.InstrumentedOptimized = 2;
  detector::RaceReport Race;
  Race.Pc = 9;
  Race.Scope = detector::RaceScopeKind::InterBlock;
  Race.Count = 768;
  Report.Races.push_back(Race);
  support::json::Writer MetricsWriter;
  obs::Registry Registry;
  Registry.counter("detector.fastpath_hits").add(24);
  Registry.writeJson(MetricsWriter);
  Report.MetricsJson = MetricsWriter.take();

  JsonValue Doc = parseJson(Report.toJson());
  EXPECT_EQ(Doc.at("schemaVersion").Number,
            static_cast<double>(RunReport::SchemaVersion));
  EXPECT_EQ(Doc.at("launch").at("kernel").Str, "k");
  EXPECT_TRUE(Doc.at("launch").at("instrumented").Bool_);
  EXPECT_EQ(Doc.at("launch").at("threadsLaunched").Number, 256.0);
  EXPECT_EQ(Doc.at("records").at("processed").Number, 28.0);
  EXPECT_EQ(Doc.at("records").at("memory").Number, 16.0);
  EXPECT_EQ(Doc.at("detector").at("fastPathHits").Number, 24.0);
  EXPECT_EQ(Doc.at("detector").at("ptvcFormats").at("converged").Number,
            16.0);
  EXPECT_EQ(Doc.at("engine").at("numQueues").Number, 4.0);
  EXPECT_EQ(Doc.at("engine").at("watermarkWaitNanos").Number, 12345.0);
  EXPECT_EQ(Doc.at("instrumentation").at("staticInsns").Number, 13.0);
  ASSERT_EQ(Doc.at("races").Array.size(), 1u);
  EXPECT_EQ(Doc.at("races").Array[0].at("pc").Number, 9.0);
  EXPECT_EQ(Doc.at("races").Array[0].at("scope").Str, "inter-block");
  EXPECT_EQ(Doc.at("barrierErrors").Array.size(), 0u);
  EXPECT_EQ(Doc.at("metrics").at("detector.fastpath_hits").Number, 24.0);
}

TEST(RunReportTest, TextFormDoesNotCrash) {
  RunReport Report;
  Report.printText(stderr);
}

//===----------------------------------------------------------------------===//
// CLI parser
//===----------------------------------------------------------------------===//

TEST(Cli, FlagsOptionsAndPositional) {
  support::cli::Parser P("tool", "FILE");
  bool Stats = false, HotPath = true;
  unsigned Queues = 4;
  std::string Out;
  P.flag("--stats", Stats, "stats");
  P.flagOff("--legacy-detector", HotPath, "legacy");
  P.uintOption("--queues", "N", Queues, "queues");
  P.stringOption("--trace-json", "OUT", Out, "trace");
  const char *Args[] = {"tool",     "input.ptx",       "--stats",
                        "--queues", "2",               "--trace-json",
                        "t.json",   "--legacy-detector"};
  ASSERT_TRUE(P.parse(8, const_cast<char **>(Args)));
  EXPECT_TRUE(Stats);
  EXPECT_FALSE(HotPath);
  EXPECT_EQ(Queues, 2u);
  EXPECT_EQ(Out, "t.json");
  EXPECT_EQ(P.positional(), "input.ptx");
}

TEST(Cli, RejectsUnknownAndMissing) {
  {
    support::cli::Parser P("tool", "FILE");
    const char *Args[] = {"tool", "f", "--nope"};
    EXPECT_FALSE(P.parse(3, const_cast<char **>(Args)));
  }
  {
    // Missing required positional.
    support::cli::Parser P("tool", "FILE");
    const char *Args[] = {"tool"};
    EXPECT_FALSE(P.parse(1, const_cast<char **>(Args)));
  }
  {
    // Option missing its value.
    support::cli::Parser P("tool", "FILE");
    unsigned N = 0;
    P.uintOption("--queues", "N", N, "queues");
    const char *Args[] = {"tool", "f", "--queues"};
    EXPECT_FALSE(P.parse(3, const_cast<char **>(Args)));
  }
}

} // namespace
