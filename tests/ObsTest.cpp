//===- ObsTest.cpp - observability layer -----------------------------------===//
//
// The observability layer's contract: log2 histogram bucketing at its
// edges, counters that survive concurrent increments, a registry whose
// instruments have stable addresses across reset(), trace output that is
// well-formed Chrome Trace Event JSON, and a RunReport document whose
// schema round-trips through a parser.
//
//===----------------------------------------------------------------------===//

#include "barracuda/RunReport.h"
#include "obs/FlightRecorder.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Cli.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace barracuda;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON parser — just enough to verify well-formedness and read
// back values the writers emitted. Throws std::runtime_error on garbage.
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool Bool_ = false;
  double Number = 0;
  std::string Str;
  std::vector<JsonValue> Array;
  std::map<std::string, JsonValue> Object;

  const JsonValue &at(const std::string &Key) const {
    auto It = Object.find(Key);
    if (It == Object.end())
      throw std::runtime_error("missing key " + Key);
    return It->second;
  }
  bool has(const std::string &Key) const {
    return Object.count(Key) != 0;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  JsonValue parse() {
    JsonValue Value = parseValue();
    skipSpace();
    if (Pos != Text.size())
      throw std::runtime_error("trailing content");
    return Value;
  }

private:
  void skipSpace() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  char peek() {
    skipSpace();
    if (Pos >= Text.size())
      throw std::runtime_error("unexpected end");
    return Text[Pos];
  }

  void expect(char C) {
    if (peek() != C)
      throw std::runtime_error(std::string("expected ") + C);
    ++Pos;
  }

  bool consume(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  JsonValue parseValue() {
    char C = peek();
    JsonValue Value;
    if (C == '{') {
      ++Pos;
      Value.K = JsonValue::Kind::Object;
      if (peek() == '}') {
        ++Pos;
        return Value;
      }
      while (true) {
        std::string Key = parseString();
        expect(':');
        Value.Object[Key] = parseValue();
        if (peek() == ',') {
          ++Pos;
          continue;
        }
        expect('}');
        return Value;
      }
    }
    if (C == '[') {
      ++Pos;
      Value.K = JsonValue::Kind::Array;
      if (peek() == ']') {
        ++Pos;
        return Value;
      }
      while (true) {
        Value.Array.push_back(parseValue());
        if (peek() == ',') {
          ++Pos;
          continue;
        }
        expect(']');
        return Value;
      }
    }
    if (C == '"') {
      Value.K = JsonValue::Kind::String;
      Value.Str = parseString();
      return Value;
    }
    skipSpace();
    if (consume("true")) {
      Value.K = JsonValue::Kind::Bool;
      Value.Bool_ = true;
      return Value;
    }
    if (consume("false")) {
      Value.K = JsonValue::Kind::Bool;
      return Value;
    }
    if (consume("null"))
      return Value;
    // Number.
    size_t End = Pos;
    while (End < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[End])) ||
            Text[End] == '-' || Text[End] == '+' || Text[End] == '.' ||
            Text[End] == 'e' || Text[End] == 'E'))
      ++End;
    if (End == Pos)
      throw std::runtime_error("bad value");
    Value.K = JsonValue::Kind::Number;
    Value.Number = std::stod(Text.substr(Pos, End - Pos));
    Pos = End;
    return Value;
  }

  std::string parseString() {
    expect('"');
    std::string Out;
    while (true) {
      if (Pos >= Text.size())
        throw std::runtime_error("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C == '\\') {
        if (Pos >= Text.size())
          throw std::runtime_error("bad escape");
        char E = Text[Pos++];
        switch (E) {
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u':
          if (Pos + 4 > Text.size())
            throw std::runtime_error("bad \\u escape");
          Pos += 4;
          Out += '?';
          break;
        default:
          Out += E;
          break;
        }
        continue;
      }
      Out += C;
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

JsonValue parseJson(const std::string &Text) {
  return JsonParser(Text).parse();
}

//===----------------------------------------------------------------------===//
// Histogram bucketing
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketEdges) {
  using obs::Histogram;
  // Bucket = bit width: 0 is alone, then [2^(k-1), 2^k) shares bucket k.
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 1u);
  EXPECT_EQ(Histogram::bucketFor(2), 2u);
  EXPECT_EQ(Histogram::bucketFor(3), 2u);
  EXPECT_EQ(Histogram::bucketFor(4), 3u);
  EXPECT_EQ(Histogram::bucketFor(7), 3u);
  EXPECT_EQ(Histogram::bucketFor(8), 4u);
  EXPECT_EQ(Histogram::bucketFor((1ULL << 32) - 1), 32u);
  EXPECT_EQ(Histogram::bucketFor(1ULL << 32), 33u);
  EXPECT_EQ(Histogram::bucketFor(UINT64_MAX), 64u);
  static_assert(Histogram::NumBuckets == 65,
                "one bucket per bit width plus zero");

  // Lower bounds invert bucketFor at every edge.
  EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::bucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::bucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::bucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::bucketLowerBound(64), 1ULL << 63);
  for (unsigned I = 0; I != Histogram::NumBuckets; ++I)
    EXPECT_EQ(Histogram::bucketFor(Histogram::bucketLowerBound(I)), I);
}

TEST(Histogram, CountsAndSum) {
  obs::Histogram H;
  H.record(0);
  H.record(1);
  H.record(5);
  H.record(5);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 11u);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(3), 2u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
}

//===----------------------------------------------------------------------===//
// Counters, gauges, registry
//===----------------------------------------------------------------------===//

TEST(Metrics, ConcurrentCounterIncrements) {
  // Run under the TSan preset too: relaxed atomic adds must neither race
  // nor lose increments.
  obs::Registry Registry;
  obs::Counter &C = Registry.counter("test.hits");
  obs::Histogram &H = Registry.histogram("test.sizes");
  constexpr unsigned NumThreads = 8;
  constexpr uint64_t PerThread = 100000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&C, &H] {
      for (uint64_t I = 0; I != PerThread; ++I) {
        C.add();
        H.record(I & 1023);
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), NumThreads * PerThread);
  EXPECT_EQ(H.count(), NumThreads * PerThread);
}

TEST(Metrics, RegistryStableAddressesAcrossReset) {
  obs::Registry Registry;
  obs::Counter *C = &Registry.counter("a.counter");
  obs::Gauge *G = &Registry.gauge("a.gauge");
  obs::Histogram *H = &Registry.histogram("a.histogram");
  C->add(7);
  G->set(-3);
  H->record(42);
  // Same name returns the same instrument.
  EXPECT_EQ(&Registry.counter("a.counter"), C);
  EXPECT_EQ(&Registry.gauge("a.gauge"), G);
  EXPECT_EQ(&Registry.histogram("a.histogram"), H);
  Registry.reset();
  // Reset zeroes values but cached pointers stay usable.
  EXPECT_EQ(C->value(), 0u);
  EXPECT_EQ(G->value(), 0);
  EXPECT_EQ(H->count(), 0u);
  C->add(1);
  EXPECT_EQ(Registry.counter("a.counter").value(), 1u);
}

TEST(Metrics, GaugeMax) {
  obs::Gauge G;
  G.updateMax(5);
  G.updateMax(3);
  EXPECT_EQ(G.value(), 5);
  G.updateMax(9);
  EXPECT_EQ(G.value(), 9);
}

TEST(Metrics, SnapshotAndJson) {
  obs::Registry Registry;
  Registry.counter("z.last").add(2);
  Registry.counter("a.first").add(1);
  Registry.histogram("m.hist").record(10);
  std::vector<obs::MetricSample> Samples = Registry.snapshot();
  ASSERT_EQ(Samples.size(), 3u);
  // Name-sorted.
  EXPECT_EQ(Samples[0].Name, "a.first");
  EXPECT_EQ(Samples[2].Name, "z.last");

  support::json::Writer W;
  Registry.writeJson(W);
  JsonValue Doc = parseJson(W.take());
  EXPECT_EQ(Doc.at("a.first").Number, 1.0);
  EXPECT_EQ(Doc.at("z.last").Number, 2.0);
  EXPECT_EQ(Doc.at("m.hist").at("count").Number, 1.0);
  EXPECT_EQ(Doc.at("m.hist").at("sum").Number, 10.0);
}

//===----------------------------------------------------------------------===//
// Trace recorder
//===----------------------------------------------------------------------===//

TEST(Trace, WellFormedChromeTraceJson) {
  obs::TraceRecorder Recorder;
  uint32_t Worker = Recorder.track("engine worker 0");
  uint32_t Device = Recorder.track("device");
  EXPECT_NE(Worker, Device);
  // Track registration dedupes by name.
  EXPECT_EQ(Recorder.track("device"), Device);

  Recorder.complete(Device, "execute k", "sim", 10, 250);
  Recorder.complete(Worker, "drain 1", "engine", 20, 40);
  Recorder.instant(Worker, "wake", "engine");
  {
    obs::Span S(&Recorder, Device, "drain k", "session");
  }
  EXPECT_EQ(Recorder.eventCount(), 4u);

  JsonValue Doc = parseJson(Recorder.json());
  const std::vector<JsonValue> &Events = Doc.at("traceEvents").Array;
  // 2 thread_name metadata events + 4 recorded events.
  ASSERT_EQ(Events.size(), 6u);
  unsigned Metadata = 0, Complete = 0, Instant = 0;
  for (const JsonValue &Event : Events) {
    const std::string &Phase = Event.at("ph").Str;
    if (Phase == "M") {
      ++Metadata;
      EXPECT_EQ(Event.at("name").Str, "thread_name");
      EXPECT_TRUE(Event.at("args").has("name"));
    } else if (Phase == "X") {
      ++Complete;
      EXPECT_TRUE(Event.has("dur"));
      EXPECT_GE(Event.at("dur").Number, 0.0);
    } else if (Phase == "i") {
      ++Instant;
    }
    EXPECT_TRUE(Event.has("pid"));
    EXPECT_TRUE(Event.has("tid"));
  }
  EXPECT_EQ(Metadata, 2u);
  EXPECT_EQ(Complete, 3u);
  EXPECT_EQ(Instant, 1u);
}

TEST(Trace, NullRecorderSpansAreFree) {
  // The disabled path: no recorder, no events, no crashes.
  obs::Span S(nullptr, 0, "nothing", "nowhere");
  S.close();
  S.close();
}

TEST(Trace, NegativeDurationClamped) {
  obs::TraceRecorder Recorder;
  uint32_t T = Recorder.track("t");
  Recorder.complete(T, "backwards", "test", 100, 50);
  JsonValue Doc = parseJson(Recorder.json());
  for (const JsonValue &Event : Doc.at("traceEvents").Array)
    if (Event.at("ph").Str == "X") {
      EXPECT_EQ(Event.at("dur").Number, 0.0);
    }
}

//===----------------------------------------------------------------------===//
// Request-scoped tracing
//===----------------------------------------------------------------------===//

TEST(Trace, RequestSpanTreeAndFlows) {
  obs::TraceRecorder Recorder;
  uint32_t Serve = Recorder.track("serve");
  uint32_t Session = Recorder.track("session 0");
  const uint64_t Request = 42;

  uint64_t FrameId = 0, LaunchId = 0;
  {
    obs::Span Frame(&Recorder, Serve, "frame launch (a)", "serve", Request,
                    0);
    FrameId = Frame.spanId();
    ASSERT_NE(FrameId, 0u);
    Recorder.flow('s', Serve, "request", "serve", Request);
    {
      obs::Span Launch(&Recorder, Session, "launch k", "session", Request,
                       FrameId);
      LaunchId = Launch.spanId();
      ASSERT_NE(LaunchId, 0u);
      ASSERT_NE(LaunchId, FrameId);
      Recorder.flow('t', Session, "request", "serve", Request);
    }
    Recorder.flow('f', Serve, "request", "serve", Request);
  }
  Recorder.finishRequest(Request, /*Keep=*/true);
  EXPECT_TRUE(Recorder.hasRequest(Request));

  JsonValue Tree = parseJson(Recorder.requestValue(Request).dump());
  EXPECT_EQ(Tree.at("requestId").Number, 42.0);
  const std::vector<JsonValue> &Spans = Tree.at("spans").Array;
  ASSERT_EQ(Spans.size(), 2u);
  // Start-time ordered: the frame opened first.
  EXPECT_EQ(Spans[0].at("spanId").Number, static_cast<double>(FrameId));
  EXPECT_EQ(Spans[0].at("parentId").Number, 0.0);
  EXPECT_EQ(Spans[1].at("spanId").Number, static_cast<double>(LaunchId));
  EXPECT_EQ(Spans[1].at("parentId").Number, static_cast<double>(FrameId));
  EXPECT_EQ(Tree.at("flows").Array.size(), 3u);

  // Flow events render with the request id as the flow id, and the
  // finishing edge binds to the enclosing slice ("bp":"e").
  JsonValue Doc = parseJson(Recorder.json());
  unsigned FlowStart = 0, FlowFinish = 0;
  for (const JsonValue &Event : Doc.at("traceEvents").Array) {
    const std::string &Phase = Event.at("ph").Str;
    if (Phase == "s") {
      ++FlowStart;
      EXPECT_EQ(Event.at("id").Number, 42.0);
    } else if (Phase == "f") {
      ++FlowFinish;
      EXPECT_EQ(Event.at("bp").Str, "e");
    }
  }
  EXPECT_EQ(FlowStart, 1u);
  EXPECT_EQ(FlowFinish, 1u);
}

TEST(Trace, FinishRequestDiscardsUnsampled) {
  obs::TraceRecorder Recorder;
  uint32_t T = Recorder.track("serve");
  {
    obs::Span S(&Recorder, T, "frame", "serve", 7, 0);
  }
  Recorder.flow('s', T, "request", "serve", 7);
  EXPECT_TRUE(Recorder.hasRequest(7));
  Recorder.finishRequest(7, /*Keep=*/false);
  EXPECT_FALSE(Recorder.hasRequest(7));
  EXPECT_EQ(Recorder.requestValue(7).get("spans")->items().size(), 0u);
  // Uncorrelated events are untouched by per-request retirement.
  Recorder.complete(T, "background", "serve", 1, 2);
  Recorder.finishRequest(99, false);
  EXPECT_EQ(Recorder.eventCount(), 1u);
}

TEST(Trace, RetentionBoundsEventCount) {
  obs::TraceRecorder Recorder;
  uint32_t T = Recorder.track("t");
  Recorder.setRetention(64);
  for (uint64_t I = 0; I != 1000; ++I)
    Recorder.complete(T, "e", "test", I, I + 1);
  EXPECT_LE(Recorder.eventCount(), 64u);
  // The survivors are the newest events.
  JsonValue Doc = parseJson(Recorder.json());
  for (const JsonValue &Event : Doc.at("traceEvents").Array)
    if (Event.at("ph").Str == "X")
      EXPECT_GE(Event.at("ts").Number, 900.0);
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, ExactCapacityRetainsEverything) {
  obs::FlightRecorder Flight(1, 8);
  EXPECT_EQ(Flight.ringCapacity(), 8u);
  for (unsigned I = 0; I != 8; ++I)
    Flight.record(0, obs::FlightCode::LeaseOpen, static_cast<uint16_t>(I),
                  100 + I, 1000 + I, I, 2 * I);
  EXPECT_EQ(Flight.recorded(), 8u);
  std::vector<obs::FlightEvent> Events = Flight.snapshot();
  ASSERT_EQ(Events.size(), 8u);
  for (unsigned I = 0; I != 8; ++I) {
    EXPECT_EQ(Events[I].Seq, I + 1);
    EXPECT_EQ(Events[I].Worker, I);
    EXPECT_EQ(Events[I].Epoch, 100 + I);
    EXPECT_EQ(Events[I].RequestId, 1000 + I);
    EXPECT_EQ(Events[I].A, I);
    EXPECT_EQ(Events[I].B, 2 * I);
    EXPECT_EQ(static_cast<obs::FlightCode>(Events[I].Code),
              obs::FlightCode::LeaseOpen);
  }
}

TEST(FlightRecorder, WraparoundKeepsNewest) {
  obs::FlightRecorder Flight(1, 8);
  for (unsigned I = 0; I != 20; ++I)
    Flight.record(0, obs::FlightCode::RecordsDropped, 0, 0, 0, I);
  EXPECT_EQ(Flight.recorded(), 20u);
  std::vector<obs::FlightEvent> Events = Flight.snapshot();
  ASSERT_EQ(Events.size(), 8u);
  // Exactly the last 8, in sequence order.
  for (unsigned I = 0; I != 8; ++I) {
    EXPECT_EQ(Events[I].Seq, 13 + I);
    EXPECT_EQ(Events[I].A, 12 + I);
  }
}

TEST(FlightRecorder, CapacityRoundsUpAndRingClamps) {
  obs::FlightRecorder Flight(2, 5);
  EXPECT_EQ(Flight.ringCapacity(), 8u); // next power of two
  EXPECT_EQ(Flight.ringCount(), 2u);
  // An out-of-range ring index lands on the last ring, not UB.
  Flight.record(99, obs::FlightCode::Custom, 0, 0, 0);
  std::vector<obs::FlightEvent> Events = Flight.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Ring, 1u);
}

TEST(FlightRecorder, ConcurrentWritersAndSnapshots) {
  // TSan-relevant: writers on every ring race snapshot() and must never
  // produce a torn event (a slot is either skipped or fully consistent:
  // we stamp A == Seq and check the invariant on every snapshot).
  obs::FlightRecorder Flight(4, 32);
  std::vector<std::thread> Writers;
  for (unsigned Ring = 0; Ring != 4; ++Ring)
    Writers.emplace_back([&Flight, Ring] {
      for (unsigned I = 0; I != 20000; ++I)
        Flight.record(Ring, obs::FlightCode::SyncMarker,
                      static_cast<uint16_t>(Ring), I, 0);
    });
  for (unsigned Round = 0; Round != 50; ++Round) {
    std::vector<obs::FlightEvent> Events = Flight.snapshot();
    uint64_t LastSeq = 0;
    for (const obs::FlightEvent &E : Events) {
      EXPECT_GT(E.Seq, LastSeq); // sorted, unique
      LastSeq = E.Seq;
      EXPECT_LT(E.Ring, 4u);
    }
  }
  for (auto &W : Writers)
    W.join();
  EXPECT_EQ(Flight.recorded(), 4u * 20000u);
}

TEST(FlightRecorder, DumpToIsParseableText) {
  obs::FlightRecorder Flight(1, 8);
  Flight.record(0, obs::FlightCode::WorkerFailure, 3, 7, 99, 1, 2);
  std::string Path = ::testing::TempDir() + "flight-dump.txt";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  Flight.dumpTo(fileno(F));
  std::fclose(F);
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Text = Buffer.str();
  EXPECT_NE(Text.find("seq="), std::string::npos);
  EXPECT_NE(Text.find("worker-failure"), std::string::npos);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Structured logger
//===----------------------------------------------------------------------===//

/// Restores global logger state (level, sink, rate limit) on scope exit
/// so log tests cannot leak configuration into each other.
struct LogStateGuard {
  ~LogStateGuard() {
    obs::resetLogSink();
    obs::setLogLevel(obs::LogLevel::Warn);
    obs::setLogRateLimit(1000);
  }
};

TEST(Log, JsonLinesWithFields) {
  LogStateGuard Guard;
  std::string Path = ::testing::TempDir() + "obs-log-test.jsonl";
  std::remove(Path.c_str());
  ASSERT_TRUE(obs::setLogSinkPath(Path).ok());
  obs::setLogLevel(obs::LogLevel::Debug);

  obs::Logger Log("test");
  Log.info("hello").kv("n", 7u).kv("name", "x").kv("flag", true);
  Log.error("boom").kv("neg", static_cast<int64_t>(-3)).kv("rate", 0.5);
  obs::resetLogSink(); // flush + close the file sink

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::vector<JsonValue> Lines;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Lines.push_back(parseJson(Line));
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_EQ(Lines[0].at("level").Str, "info");
  EXPECT_EQ(Lines[0].at("component").Str, "test");
  EXPECT_EQ(Lines[0].at("event").Str, "hello");
  EXPECT_EQ(Lines[0].at("n").Number, 7.0);
  EXPECT_EQ(Lines[0].at("name").Str, "x");
  EXPECT_TRUE(Lines[0].at("flag").Bool_);
  EXPECT_GT(Lines[0].at("ts").Number, 0.0);
  EXPECT_EQ(Lines[1].at("level").Str, "error");
  EXPECT_EQ(Lines[1].at("neg").Number, -3.0);
  EXPECT_EQ(Lines[1].at("rate").Number, 0.5);
  std::remove(Path.c_str());
}

TEST(Log, ThresholdFiltersBelowLevel) {
  LogStateGuard Guard;
  obs::setLogLevel(obs::LogLevel::Error);
  uint64_t InfoBefore = obs::logLinesEmitted(obs::LogLevel::Info);
  uint64_t ErrorBefore = obs::logLinesEmitted(obs::LogLevel::Error);
  obs::Logger Log("test");
  Log.info("dropped").kv("k", 1);
  Log.error("kept");
  EXPECT_EQ(obs::logLinesEmitted(obs::LogLevel::Info), InfoBefore);
  EXPECT_EQ(obs::logLinesEmitted(obs::LogLevel::Error), ErrorBefore + 1);
  EXPECT_FALSE(Log.enabled(obs::LogLevel::Info));
  EXPECT_TRUE(Log.enabled(obs::LogLevel::Error));
}

TEST(Log, RateLimiterDropsAndCounts) {
  LogStateGuard Guard;
  std::string Path = ::testing::TempDir() + "obs-log-rate.jsonl";
  std::remove(Path.c_str());
  ASSERT_TRUE(obs::setLogSinkPath(Path).ok());
  obs::setLogLevel(obs::LogLevel::Debug);
  obs::setLogRateLimit(10);
  uint64_t DroppedBefore = obs::logLinesDropped();
  obs::Logger Log("test");
  for (unsigned I = 0; I != 100; ++I)
    Log.info("spam").kv("i", I);
  EXPECT_GT(obs::logLinesDropped(), DroppedBefore);
  std::remove(Path.c_str());
}

TEST(Log, LevelNamesRoundTrip) {
  using obs::LogLevel;
  for (LogLevel Level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                         LogLevel::Error, LogLevel::Off}) {
    LogLevel Parsed;
    ASSERT_TRUE(obs::logLevelFromName(obs::logLevelName(Level), Parsed));
    EXPECT_EQ(Parsed, Level);
  }
  LogLevel Unused;
  EXPECT_FALSE(obs::logLevelFromName("verbose", Unused));
  EXPECT_FALSE(obs::logLevelFromName("", Unused));
}

//===----------------------------------------------------------------------===//
// RunReport schema
//===----------------------------------------------------------------------===//

TEST(RunReportTest, SchemaRoundTrip) {
  RunReport Report;
  Report.Launch.Kernel = "k";
  Report.Launch.Instrumented = true;
  Report.Launch.ThreadsLaunched = 256;
  Report.Launch.RecordsLogged = 28;
  Report.Records.Processed = 28;
  Report.Records.Memory = 16;
  Report.Detector.HotPath.FastPathHits = 24;
  Report.Detector.Formats.Samples[0] = 16;
  Report.Engine.NumQueues = 4;
  Report.Engine.WatermarkWaitNanos = 12345;
  Report.Static.StaticInsns = 13;
  Report.Static.InstrumentedOptimized = 2;
  detector::RaceReport Race;
  Race.Pc = 9;
  Race.Scope = detector::RaceScopeKind::InterBlock;
  Race.Count = 768;
  Report.Races.push_back(Race);
  support::json::Writer MetricsWriter;
  obs::Registry Registry;
  Registry.counter("detector.fastpath_hits").add(24);
  Registry.writeJson(MetricsWriter);
  Report.MetricsJson = MetricsWriter.take();

  JsonValue Doc = parseJson(Report.toJson());
  EXPECT_EQ(Doc.at("schemaVersion").Number,
            static_cast<double>(RunReport::SchemaVersion));
  EXPECT_EQ(Doc.at("launch").at("kernel").Str, "k");
  EXPECT_TRUE(Doc.at("launch").at("instrumented").Bool_);
  EXPECT_EQ(Doc.at("launch").at("threadsLaunched").Number, 256.0);
  EXPECT_EQ(Doc.at("records").at("processed").Number, 28.0);
  EXPECT_EQ(Doc.at("records").at("memory").Number, 16.0);
  EXPECT_EQ(Doc.at("detector").at("fastPathHits").Number, 24.0);
  EXPECT_EQ(Doc.at("detector").at("ptvcFormats").at("converged").Number,
            16.0);
  EXPECT_EQ(Doc.at("engine").at("numQueues").Number, 4.0);
  EXPECT_EQ(Doc.at("engine").at("watermarkWaitNanos").Number, 12345.0);
  EXPECT_EQ(Doc.at("instrumentation").at("staticInsns").Number, 13.0);
  ASSERT_EQ(Doc.at("races").Array.size(), 1u);
  EXPECT_EQ(Doc.at("races").Array[0].at("pc").Number, 9.0);
  EXPECT_EQ(Doc.at("races").Array[0].at("scope").Str, "inter-block");
  EXPECT_EQ(Doc.at("barrierErrors").Array.size(), 0u);
  EXPECT_EQ(Doc.at("metrics").at("detector.fastpath_hits").Number, 24.0);
}

TEST(RunReportTest, BlackboxSectionSerializesWhenCaptured) {
  RunReport Report;
  // Not captured: the section is absent entirely.
  JsonValue Clean = parseJson(Report.toJson());
  EXPECT_FALSE(Clean.has("blackbox"));

  Report.Blackbox.Captured = true;
  Report.Blackbox.Reason = "degraded";
  RunReport::BlackboxSection::Event E;
  E.Seq = 5;
  E.TimeNs = 123456;
  E.Code = "worker-failure";
  E.Ring = 1;
  E.Worker = 2;
  E.Epoch = 9;
  E.RequestId = 77;
  E.A = 3;
  Report.Blackbox.Events.push_back(E);

  JsonValue Doc = parseJson(Report.toJson());
  EXPECT_EQ(Doc.at("schemaVersion").Number, 3.0);
  const JsonValue &Box = Doc.at("blackbox");
  EXPECT_TRUE(Box.at("captured").Bool_);
  EXPECT_EQ(Box.at("reason").Str, "degraded");
  ASSERT_EQ(Box.at("events").Array.size(), 1u);
  const JsonValue &Out = Box.at("events").Array[0];
  EXPECT_EQ(Out.at("seq").Number, 5.0);
  EXPECT_EQ(Out.at("code").Str, "worker-failure");
  EXPECT_EQ(Out.at("worker").Number, 2.0);
  EXPECT_EQ(Out.at("requestId").Number, 77.0);
}

TEST(RunReportTest, TextFormDoesNotCrash) {
  RunReport Report;
  Report.printText(stderr);
}

//===----------------------------------------------------------------------===//
// CLI parser
//===----------------------------------------------------------------------===//

TEST(Cli, FlagsOptionsAndPositional) {
  support::cli::Parser P("tool", "FILE");
  bool Stats = false, HotPath = true;
  unsigned Queues = 4;
  std::string Out;
  P.flag("--stats", Stats, "stats");
  P.flagOff("--legacy-detector", HotPath, "legacy");
  P.uintOption("--queues", "N", Queues, "queues");
  P.stringOption("--trace-json", "OUT", Out, "trace");
  const char *Args[] = {"tool",     "input.ptx",       "--stats",
                        "--queues", "2",               "--trace-json",
                        "t.json",   "--legacy-detector"};
  ASSERT_TRUE(P.parse(8, const_cast<char **>(Args)));
  EXPECT_TRUE(Stats);
  EXPECT_FALSE(HotPath);
  EXPECT_EQ(Queues, 2u);
  EXPECT_EQ(Out, "t.json");
  EXPECT_EQ(P.positional(), "input.ptx");
}

TEST(Cli, RejectsUnknownAndMissing) {
  {
    support::cli::Parser P("tool", "FILE");
    const char *Args[] = {"tool", "f", "--nope"};
    EXPECT_FALSE(P.parse(3, const_cast<char **>(Args)));
  }
  {
    // Missing required positional.
    support::cli::Parser P("tool", "FILE");
    const char *Args[] = {"tool"};
    EXPECT_FALSE(P.parse(1, const_cast<char **>(Args)));
  }
  {
    // Option missing its value.
    support::cli::Parser P("tool", "FILE");
    unsigned N = 0;
    P.uintOption("--queues", "N", N, "queues");
    const char *Args[] = {"tool", "f", "--queues"};
    EXPECT_FALSE(P.parse(3, const_cast<char **>(Args)));
  }
}

} // namespace
