//===- ServeTest.cpp - detection-as-a-service daemon -----------------------===//
//
// The serving layer's contract: the line protocol answers every
// malformed frame with a typed error (never a hang, never a silent
// close mid-frame), concurrent tenants multiplexed onto the one shared
// engine get exactly the verdicts a standalone Session would produce,
// admission refuses typed Overloaded at both the tenant quota and the
// engine lease layer, and one tenant's injected faults never leak into
// another tenant's reports.
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "runtime/Engine.h"
#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "support/Format.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <unistd.h>
#include <vector>

using namespace barracuda;
using support::json::Value;

namespace {

// Same module as EngineTest: hist_racy is a deterministic race set when
// run as one block (all records land in one queue), hist_safe is atomic
// and race-free.
const char *HistogramModule = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry hist_racy(
    .param .u64 bins
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<8>;
    ld.param.u64 %rd1, [bins];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    and.b32 %r5, %r4, 7;
    cvt.u64.u32 %rd2, %r5;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r6, [%rd3];
    add.u32 %r6, %r6, 1;
    st.global.u32 [%rd3], %r6;
    ret;
}

.visible .entry hist_safe(
    .param .u64 bins
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<8>;
    ld.param.u64 %rd1, [bins];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    and.b32 %r5, %r4, 7;
    cvt.u64.u32 %rd2, %r5;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    atom.global.add.u32 %r6, [%rd3], 1;
    ret;
}
)";

/// A fresh socket path per test so parallel ctest runs never collide.
std::string testSocketPath() {
  static std::atomic<unsigned> Counter{0};
  return support::formatString(
      "/tmp/barracuda-serve-test-%d-%u.sock", static_cast<int>(getpid()),
      Counter.fetch_add(1));
}

/// Distinct race identity as rendered in the RunReport JSON document:
/// (pc, current, previous, space, scope). Counts and thread ids
/// legitimately vary with interleaving; the key set must not.
using DocRaceKey =
    std::tuple<uint64_t, std::string, std::string, std::string,
               std::string>;

std::set<DocRaceKey> docRaceKeys(const Value &ReportDoc) {
  std::set<DocRaceKey> Keys;
  const Value *Races = ReportDoc.get("races");
  if (!Races || !Races->isArray())
    return Keys;
  for (const Value &Race : Races->items())
    Keys.insert({Race.getU64("pc"), Race.getString("current"),
                 Race.getString("previous"), Race.getString("space"),
                 Race.getString("scope")});
  return Keys;
}

} // namespace

//===----------------------------------------------------------------------===//
// Protocol framing: every malformed frame decodes to a typed error.
//===----------------------------------------------------------------------===//

TEST(ServeProtocol, MalformedFramesAreTypedErrors) {
  struct Case {
    const char *Frame;
    const char *ExpectInMessage;
  } Cases[] = {
      {"{\"op\": \"hello\"", "offset"},                 // truncated JSON
      {"[1, 2, 3]", "must be a JSON object"},            // non-object
      {"{\"op\": \"hello\"}", "schemaVersion"},         // missing version
      {"{\"schemaVersion\": 99, \"op\": \"hello\"}",
       "unsupported schemaVersion"},                      // future version
      {"{\"schemaVersion\": 1}", "missing \"op\""},     // no op
      {"{\"schemaVersion\": 1, \"op\": \"divide\"}",
       "unknown op"},                                     // unknown op
      {"{\"schemaVersion\": 1, \"op\": \"launch\"}",
       "requires a \"tenant\""},                          // tenant-less op
  };
  for (const Case &C : Cases) {
    support::Result<serve::Request> Decoded = serve::parseRequest(C.Frame);
    ASSERT_FALSE(Decoded.ok()) << C.Frame;
    EXPECT_EQ(Decoded.status().code(), support::ErrorCode::ProtocolError)
        << C.Frame;
    EXPECT_NE(Decoded.status().message().find(C.ExpectInMessage),
              std::string::npos)
        << C.Frame << " -> " << Decoded.status().message();
  }
}

TEST(ServeProtocol, OversizedFrameRefused) {
  std::string Huge = "{\"schemaVersion\": 1, \"op\": \"hello\", \"pad\": \"";
  Huge.append(serve::MaxFrameBytes, 'x');
  Huge += "\"}";
  support::Result<serve::Request> Decoded = serve::parseRequest(Huge);
  ASSERT_FALSE(Decoded.ok());
  EXPECT_EQ(Decoded.status().code(), support::ErrorCode::ProtocolError);
  EXPECT_NE(Decoded.status().message().find("cap"), std::string::npos);
}

TEST(ServeProtocol, TenantlessOpsAndFieldPassthrough) {
  support::Result<serve::Request> Hello =
      serve::parseRequest("{\"schemaVersion\": 1, \"op\": \"stats\"}");
  ASSERT_TRUE(Hello.ok()) << Hello.status().describe();
  EXPECT_EQ(Hello.value().O, serve::Op::Stats);

  support::Result<serve::Request> Launch = serve::parseRequest(
      "{\"schemaVersion\": 1, \"op\": \"launch\", \"tenant\": \"a\", "
      "\"kernel\": \"k\", \"grid\": [2, 1, 1], \"block\": 64}");
  ASSERT_TRUE(Launch.ok()) << Launch.status().describe();
  EXPECT_EQ(Launch.value().O, serve::Op::Launch);
  EXPECT_EQ(Launch.value().Tenant, "a");
  EXPECT_EQ(Launch.value().Body.getString("kernel"), "k");
}

TEST(ServeProtocol, ResponseRoundTrip) {
  Value Payload = Value::object();
  Payload.set("addr", Value::number(static_cast<uint64_t>(1) << 40));
  std::string Ok = serve::okResponse(serve::Op::Alloc, Payload);
  // Wire frames are single lines.
  EXPECT_EQ(Ok.find('\n'), std::string::npos);
  support::Result<Value> Decoded = serve::parseResponse(Ok);
  ASSERT_TRUE(Decoded.ok()) << Decoded.status().describe();
  EXPECT_EQ(Decoded.value().getString("op"), "alloc");
  // 64-bit addresses survive the round trip exactly.
  EXPECT_EQ(Decoded.value().getU64("addr"), static_cast<uint64_t>(1) << 40);

  std::string Err = serve::errorResponse(
      "launch", support::Status(support::ErrorCode::Overloaded,
                                "8 launches already in flight"));
  support::Result<Value> Refused = serve::parseResponse(Err);
  ASSERT_FALSE(Refused.ok());
  EXPECT_EQ(Refused.status().code(), support::ErrorCode::Overloaded);
  EXPECT_EQ(Refused.status().message(), "8 launches already in flight");
}

//===----------------------------------------------------------------------===//
// End-to-end over the socket.
//===----------------------------------------------------------------------===//

TEST(ServeServer, HelloMemoryOpsAndBlockingLaunch) {
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  Options.NumQueues = 2;
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client C;
  ASSERT_TRUE(C.connect(Server.socketPath()).ok());

  support::Result<Value> Hello = C.hello();
  ASSERT_TRUE(Hello.ok()) << Hello.status().describe();
  EXPECT_EQ(Hello.value().getString("server"), "barracuda-serve");
  EXPECT_EQ(Hello.value().getU64("queues"), 2u);

  support::Result<std::vector<std::string>> Kernels =
      C.loadModule("t0", HistogramModule);
  ASSERT_TRUE(Kernels.ok()) << Kernels.status().describe();
  EXPECT_EQ(Kernels.value(),
            (std::vector<std::string>{"hist_racy", "hist_safe"}));

  support::Result<uint64_t> Bins = C.alloc("t0", 64);
  ASSERT_TRUE(Bins.ok()) << Bins.status().describe();
  ASSERT_NE(Bins.value(), 0u);
  EXPECT_TRUE(C.writeU32("t0", Bins.value(), 41).ok());
  support::Result<uint32_t> Word = C.readU32("t0", Bins.value());
  ASSERT_TRUE(Word.ok());
  EXPECT_EQ(Word.value(), 41u);

  support::Result<Value> Launch =
      C.launch("t0", "hist_racy", sim::Dim3(1), sim::Dim3(64),
               {Bins.value()}, /*WantReport=*/true);
  ASSERT_TRUE(Launch.ok()) << Launch.status().describe();
  EXPECT_TRUE(Launch.value().getBool("ok"));
  EXPECT_EQ(Launch.value().getU64("threads"), 64u);
  EXPECT_GT(Launch.value().getU64("recordsLogged"), 0u);
  EXPECT_GT(Launch.value().getU64("racesTotal"), 0u);
  EXPECT_FALSE(Launch.value().getBool("degraded"));
  // The embedded per-request RunReport is the full schema-3 document.
  const Value *Doc = Launch.value().get("report");
  ASSERT_NE(Doc, nullptr);
  EXPECT_EQ(Doc->getU64("schemaVersion"), 3u);
  EXPECT_FALSE(docRaceKeys(*Doc).empty());

  // The report op returns the same document shape.
  support::Result<Value> Report = C.report("t0");
  ASSERT_TRUE(Report.ok()) << Report.status().describe();
  const Value *ReportDoc = Report.value().get("report");
  ASSERT_NE(ReportDoc, nullptr);
  EXPECT_EQ(docRaceKeys(*ReportDoc), docRaceKeys(*Doc));

  support::Result<Value> Stats = C.stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats.value().getU64("tenants"), 1u);
  EXPECT_GE(Stats.value().getU64("launchesBegun"), 1u);

  EXPECT_TRUE(C.shutdown().ok());
  Server.stop();
  EXPECT_TRUE(Server.shutdownRequested());
}

TEST(ServeServer, TypedErrorsOverTheSocket) {
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client C;
  ASSERT_TRUE(C.connect(Server.socketPath()).ok());

  // Launch before any module: InvalidLaunch, connection stays usable.
  support::Result<Value> NoModule =
      C.launch("t0", "hist_racy", sim::Dim3(1), sim::Dim3(32));
  ASSERT_FALSE(NoModule.ok());
  EXPECT_EQ(NoModule.status().code(), support::ErrorCode::InvalidLaunch);

  // A module that does not verify: ModuleInvalid.
  support::Result<std::vector<std::string>> Bad =
      C.loadModule("t0", ".version 4.3\n.target sm_35\nGARBAGE");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), support::ErrorCode::ModuleInvalid);

  ASSERT_TRUE(C.loadModule("t0", HistogramModule).ok());
  support::Result<Value> Unknown =
      C.launch("t0", "no_such_kernel", sim::Dim3(1), sim::Dim3(32));
  ASSERT_FALSE(Unknown.ok());
  EXPECT_EQ(Unknown.status().code(), support::ErrorCode::InvalidLaunch);

  // Unknown poll ticket: typed, not a hang.
  support::Result<Value> Poll = C.poll("t0", 999);
  ASSERT_FALSE(Poll.ok());
  EXPECT_EQ(Poll.status().code(), support::ErrorCode::InvalidLaunch);

  // The connection survived every typed refusal above.
  support::Result<uint64_t> Bins = C.alloc("t0", 64);
  ASSERT_TRUE(Bins.ok());
  support::Result<Value> Launch =
      C.launch("t0", "hist_safe", sim::Dim3(2), sim::Dim3(64),
               {Bins.value()});
  ASSERT_TRUE(Launch.ok()) << Launch.status().describe();
  EXPECT_TRUE(Launch.value().getBool("ok"));
  EXPECT_EQ(Launch.value().getU64("racesTotal"), 0u);
  Server.stop();
}

TEST(ServeServer, OversizedFrameAnswersTypedAndCloses) {
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  Options.MaxFrameBytes = 1024;
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client C;
  ASSERT_TRUE(C.connect(Server.socketPath()).ok());
  // A frame that outgrows the cap before its newline arrives (larger
  // than one recv chunk) can never be framed: the server answers
  // ProtocolError and drops the connection.
  Value Big = Value::object();
  Big.set("op", Value::string("hello"));
  Big.set("pad", Value::string(std::string(8192, 'x')));
  support::Result<Value> Refused = C.call(Big);
  ASSERT_FALSE(Refused.ok());
  EXPECT_EQ(Refused.status().code(), support::ErrorCode::ProtocolError);
  // Framing is lost, so the connection is gone; a fresh one works.
  EXPECT_FALSE(C.hello().ok());
  serve::Client Fresh;
  ASSERT_TRUE(Fresh.connect(Server.socketPath()).ok());
  EXPECT_TRUE(Fresh.hello().ok());
  Server.stop();
}

//===----------------------------------------------------------------------===//
// Concurrent tenants: byte-identical verdicts vs standalone Sessions.
//===----------------------------------------------------------------------===//

TEST(ServeServer, ConcurrentTenantsMatchStandaloneSession) {
  // Serial reference: a standalone Session running the same two
  // launches (racy as one block for a deterministic race set, safe as
  // four blocks for real queue overlap).
  std::set<DocRaceKey> Reference;
  {
    Session S;
    ASSERT_TRUE(S.loadModule(HistogramModule).ok()) << S.error();
    uint64_t RacyBins = S.alloc(64), SafeBins = S.alloc(64);
    ASSERT_TRUE(
        S.launchKernel("hist_racy", sim::Dim3(1), sim::Dim3(64), {RacyBins})
            .ok());
    ASSERT_TRUE(
        S.launchKernel("hist_safe", sim::Dim3(4), sim::Dim3(64), {SafeBins})
            .ok());
    support::Result<Value> Doc = support::json::parse(S.report().toJson());
    ASSERT_TRUE(Doc.ok()) << Doc.status().describe();
    Reference = docRaceKeys(Doc.value());
    ASSERT_FALSE(Reference.empty());
  }

  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  Options.NumQueues = 4;
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  constexpr unsigned NumTenants = 4;
  std::vector<std::set<DocRaceKey>> Verdicts(NumTenants);
  std::vector<std::string> Failures(NumTenants);
  std::vector<std::thread> Drivers;
  for (unsigned I = 0; I != NumTenants; ++I)
    Drivers.emplace_back([&, I] {
      std::string Tenant = support::formatString("tenant-%u", I);
      serve::Client C;
      support::Status Connected = C.connect(Server.socketPath());
      if (!Connected.ok()) {
        Failures[I] = Connected.describe();
        return;
      }
      if (!C.loadModule(Tenant, HistogramModule).ok()) {
        Failures[I] = "load_module failed";
        return;
      }
      uint64_t RacyBins = C.alloc(Tenant, 64).valueOr(0);
      uint64_t SafeBins = C.alloc(Tenant, 64).valueOr(0);
      support::Result<Value> Racy = C.launch(
          Tenant, "hist_racy", sim::Dim3(1), sim::Dim3(64), {RacyBins});
      if (!Racy.ok() || !Racy.value().getBool("ok")) {
        Failures[I] = "racy launch failed: " + Racy.status().describe();
        return;
      }
      support::Result<Value> Safe = C.launch(
          Tenant, "hist_safe", sim::Dim3(4), sim::Dim3(64), {SafeBins});
      if (!Safe.ok() || !Safe.value().getBool("ok")) {
        Failures[I] = "safe launch failed: " + Safe.status().describe();
        return;
      }
      if (Safe.value().getBool("degraded")) {
        Failures[I] = "launch degraded under multiplexing";
        return;
      }
      support::Result<Value> Report = C.report(Tenant);
      const Value *Doc = Report.ok() ? Report.value().get("report") : nullptr;
      if (!Doc) {
        Failures[I] = "report failed: " + Report.status().describe();
        return;
      }
      Verdicts[I] = docRaceKeys(*Doc);
    });
  for (std::thread &T : Drivers)
    T.join();

  for (unsigned I = 0; I != NumTenants; ++I) {
    EXPECT_TRUE(Failures[I].empty()) << "tenant " << I << ": " << Failures[I];
    // Every tenant's verdict set equals the standalone Session's: the
    // epochs multiplexed onto the shared pool never bled into each
    // other and never lost a record.
    EXPECT_EQ(Verdicts[I], Reference) << "tenant " << I;
  }
  EXPECT_EQ(Server.tenants().tenantCount(), NumTenants);
  Server.stop();
}

//===----------------------------------------------------------------------===//
// Admission: tenant quota and engine leases both refuse typed.
//===----------------------------------------------------------------------===//

TEST(ServeServer, TenantQuotaRefusesTypedOverloaded) {
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  Options.Tenant.MaxInFlight = 2;
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client C;
  ASSERT_TRUE(C.connect(Server.socketPath()).ok());
  ASSERT_TRUE(C.loadModule("t0", HistogramModule).ok());
  uint64_t Bins = C.alloc("t0", 64).valueOr(0);

  // Two async launches stay in flight until reaped by poll, so the
  // third is deterministically over quota however fast they execute.
  support::Result<uint64_t> T1 =
      C.launchAsync("t0", "hist_safe", sim::Dim3(2), sim::Dim3(64), {Bins});
  support::Result<uint64_t> T2 =
      C.launchAsync("t0", "hist_safe", sim::Dim3(2), sim::Dim3(64), {Bins});
  ASSERT_TRUE(T1.ok() && T2.ok());

  support::Result<uint64_t> Third =
      C.launchAsync("t0", "hist_safe", sim::Dim3(2), sim::Dim3(64), {Bins});
  ASSERT_FALSE(Third.ok());
  EXPECT_EQ(Third.status().code(), support::ErrorCode::Overloaded);
  EXPECT_NE(Third.status().message().find("quota"), std::string::npos);

  // Reaping releases quota; the next launch is admitted again.
  support::Result<Value> Done1 = C.pollUntilDone("t0", T1.value());
  support::Result<Value> Done2 = C.pollUntilDone("t0", T2.value());
  ASSERT_TRUE(Done1.ok() && Done2.ok());
  EXPECT_TRUE(Done1.value().getBool("ok"));
  EXPECT_TRUE(Done2.value().getBool("ok"));
  support::Result<Value> Fourth =
      C.launch("t0", "hist_safe", sim::Dim3(2), sim::Dim3(64), {Bins});
  ASSERT_TRUE(Fourth.ok()) << Fourth.status().describe();
  EXPECT_TRUE(Fourth.value().getBool("ok"));

  // The refusal was counted, and nothing leaked into in-flight.
  EXPECT_EQ(Server.tenants().acquire("t0").launchesRefused(), 1u);
  EXPECT_EQ(Server.tenants().acquire("t0").inFlight(), 0u);
  Server.stop();
}

TEST(ServeAdmission, EngineLeaseLimitRefusesTyped) {
  // The engine-level half of admission, deterministic: hold one lease
  // open and tryBegin a second under MaxLeasesInFlight=1.
  runtime::Engine Engine;
  detector::DetectorOptions DetOpts;
  DetOpts.Hier = sim::ThreadHierarchy(
      sim::LaunchConfig{sim::Dim3(1), sim::Dim3(32)});
  runtime::Admission Limits;
  Limits.MaxLeasesInFlight = 1;

  detector::SharedDetectorState First(DetOpts);
  std::shared_ptr<runtime::Launch> Held = Engine.begin(First);

  detector::SharedDetectorState Second(DetOpts);
  support::Result<std::shared_ptr<runtime::Launch>> Refused =
      Engine.tryBegin(Second, Limits);
  ASSERT_FALSE(Refused.ok());
  EXPECT_EQ(Refused.status().code(), support::ErrorCode::Overloaded);

  Held->finish();
  support::Result<std::shared_ptr<runtime::Launch>> Admitted =
      Engine.tryBegin(Second, Limits);
  ASSERT_TRUE(Admitted.ok()) << Admitted.status().describe();
  Admitted.value()->finish();
}

//===----------------------------------------------------------------------===//
// Fault soak and per-tenant isolation.
//===----------------------------------------------------------------------===//

TEST(ServeServer, ConsumerDeathSoakStaysClean) {
  // An engine-side consumer death abandons one of the four queues; the
  // route-around keeps every tenant's launches lossless, so the soak
  // must end with zero degraded launches and full verdicts.
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  Options.NumQueues = 4;
  ASSERT_TRUE(Options.EngineFaults.add("consumer-death").ok());
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  constexpr unsigned NumTenants = 2, Rounds = 5;
  std::vector<std::string> Failures(NumTenants);
  std::vector<std::thread> Drivers;
  for (unsigned I = 0; I != NumTenants; ++I)
    Drivers.emplace_back([&, I] {
      std::string Tenant = support::formatString("soak-%u", I);
      serve::Client C;
      if (!C.connect(Server.socketPath()).ok() ||
          !C.loadModule(Tenant, HistogramModule).ok()) {
        Failures[I] = "setup failed";
        return;
      }
      uint64_t Bins = C.alloc(Tenant, 64).valueOr(0);
      for (unsigned Round = 0; Round != Rounds; ++Round) {
        support::Result<Value> Launch = C.launch(
            Tenant, "hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins});
        if (!Launch.ok() || !Launch.value().getBool("ok")) {
          Failures[I] = "round " + std::to_string(Round) +
                        " failed: " + Launch.status().describe();
          return;
        }
        if (Launch.value().getBool("degraded")) {
          Failures[I] = "round " + std::to_string(Round) + " degraded";
          return;
        }
        if (!Launch.value().getU64("racesTotal")) {
          Failures[I] = "round " + std::to_string(Round) + " lost races";
          return;
        }
        if (!Launch.value().getU64("queuesRerouted")) {
          Failures[I] =
              "round " + std::to_string(Round) + " did not reroute";
          return;
        }
      }
    });
  for (std::thread &T : Drivers)
    T.join();
  for (unsigned I = 0; I != NumTenants; ++I)
    EXPECT_TRUE(Failures[I].empty()) << "tenant " << I << ": " << Failures[I];
  // The fault really fired: a queue was abandoned, yet nothing above
  // was dropped or degraded.
  EXPECT_GE(Server.engine().counters().QueuesAbandoned, 1u);
  Server.stop();
}

TEST(ServeServer, TenantFaultIsolation) {
  // Tenant "hung" loads its module with an injected kernel spin and a
  // watchdog; its launches fail typed KernelHang. Tenant "clean" shares
  // the same engine and must stay pristine.
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client Hung, Clean;
  ASSERT_TRUE(Hung.connect(Server.socketPath()).ok());
  ASSERT_TRUE(Clean.connect(Server.socketPath()).ok());

  ASSERT_TRUE(Hung.loadModule("hung", HistogramModule, {"kernel-spin"},
                              /*WatchdogInstructions=*/20000)
                  .ok());
  ASSERT_TRUE(Clean.loadModule("clean", HistogramModule).ok());

  uint64_t HungBins = Hung.alloc("hung", 64).valueOr(0);
  uint64_t CleanBins = Clean.alloc("clean", 64).valueOr(0);

  support::Result<Value> Spun = Hung.launch("hung", "hist_racy", sim::Dim3(1),
                                            sim::Dim3(64), {HungBins});
  ASSERT_FALSE(Spun.ok());
  EXPECT_EQ(Spun.status().code(), support::ErrorCode::KernelHang);

  support::Result<Value> Fine = Clean.launch(
      "clean", "hist_racy", sim::Dim3(1), sim::Dim3(64), {CleanBins});
  ASSERT_TRUE(Fine.ok()) << Fine.status().describe();
  EXPECT_TRUE(Fine.value().getBool("ok"));
  EXPECT_FALSE(Fine.value().getBool("degraded"));
  EXPECT_GT(Fine.value().getU64("racesTotal"), 0u);

  // The hang released its quota slot; the hung tenant's report is its
  // own failure, not the clean tenant's verdict.
  EXPECT_EQ(Server.tenants().acquire("hung").inFlight(), 0u);
  support::Result<Value> CleanReport = Clean.report("clean");
  ASSERT_TRUE(CleanReport.ok());
  const Value *Doc = CleanReport.value().get("report");
  ASSERT_NE(Doc, nullptr);
  EXPECT_FALSE(docRaceKeys(*Doc).empty());
  Server.stop();
}

//===----------------------------------------------------------------------===//
// Request lifecycles over the wire: deadlines, cancellation, retry and
// graceful drain.
//===----------------------------------------------------------------------===//

TEST(ServeLifecycle, DeadlineAnswersTypedDeadlineExceeded) {
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client C;
  ASSERT_TRUE(C.connect(Server.socketPath()).ok());
  // kernel-spin with the default (huge) watchdog: only the request's
  // own deadline can retire the launch.
  ASSERT_TRUE(C.loadModule("t0", HistogramModule, {"kernel-spin"}).ok());
  uint64_t Bins = C.alloc("t0", 64).valueOr(0);

  support::Result<Value> Spun =
      C.launch("t0", "hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins},
               /*WantReport=*/false, /*DeadlineMs=*/100);
  ASSERT_FALSE(Spun.ok());
  EXPECT_EQ(Spun.status().code(), support::ErrorCode::DeadlineExceeded);
  // The quota slot was released by the typed failure.
  EXPECT_EQ(Server.tenants().acquire("t0").inFlight(), 0u);
  Server.stop();
}

TEST(ServeLifecycle, CancelResolvesATicketToTypedCancelled) {
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client C;
  ASSERT_TRUE(C.connect(Server.socketPath()).ok());
  ASSERT_TRUE(C.loadModule("t0", HistogramModule, {"kernel-spin"}).ok());
  uint64_t Bins = C.alloc("t0", 64).valueOr(0);

  support::Result<uint64_t> Ticket = C.launchAsync(
      "t0", "hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins});
  ASSERT_TRUE(Ticket.ok()) << Ticket.status().describe();

  support::Result<Value> Cancelled = C.cancel("t0", Ticket.value());
  ASSERT_TRUE(Cancelled.ok()) << Cancelled.status().describe();
  EXPECT_TRUE(Cancelled.value().getBool("cancelled"));
  EXPECT_FALSE(Cancelled.value().getBool("done"));

  support::Result<Value> Done = C.pollUntilDone("t0", Ticket.value());
  ASSERT_TRUE(Done.ok()) << Done.status().describe();
  EXPECT_TRUE(Done.value().getBool("done"));
  EXPECT_FALSE(Done.value().getBool("ok"));
  EXPECT_EQ(Done.value().getString("launchStatus"), "Cancelled");
  EXPECT_EQ(Server.tenants().acquire("t0").inFlight(), 0u);
  Server.stop();
}

TEST(ServeLifecycle, CancelAfterCompletionIsANoOpAndUnknownTicketsTyped) {
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client C;
  ASSERT_TRUE(C.connect(Server.socketPath()).ok());
  ASSERT_TRUE(C.loadModule("t0", HistogramModule).ok());
  uint64_t Bins = C.alloc("t0", 64).valueOr(0);

  support::Result<uint64_t> Ticket = C.launchAsync(
      "t0", "hist_safe", sim::Dim3(1), sim::Dim3(64), {Bins});
  ASSERT_TRUE(Ticket.ok());
  // Wait for the launch to finish without reaping it (polling a ready
  // ticket reaps; cancelling an unfinished one revokes) — the in-process
  // unresolved count is the side channel that does neither.
  while (Server.tenants().acquire("t0").unresolvedLaunches() != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  support::Result<Value> NoOp = C.cancel("t0", Ticket.value());
  ASSERT_TRUE(NoOp.ok()) << NoOp.status().describe();
  EXPECT_TRUE(NoOp.value().getBool("done"));
  EXPECT_FALSE(NoOp.value().getBool("cancelled"));
  support::Result<Value> Done = C.pollUntilDone("t0", Ticket.value());
  ASSERT_TRUE(Done.ok());
  EXPECT_TRUE(Done.value().getBool("ok"));

  support::Result<Value> Unknown = C.cancel("t0", 999999);
  ASSERT_FALSE(Unknown.ok());
  EXPECT_EQ(Unknown.status().code(), support::ErrorCode::ProtocolError);
  Server.stop();
}

TEST(ServeLifecycle, RetryRidesOutAQuotaRefusal) {
  // Quota 1: a spinning deadlined launch holds the only slot. The
  // second launch's retry loop must absorb the typed Overloaded
  // refusals until the first launch's deadline frees the slot — its
  // terminal code is then its own DeadlineExceeded, never Overloaded.
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  Options.Tenant.MaxInFlight = 1;
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client A, B;
  ASSERT_TRUE(A.connect(Server.socketPath()).ok());
  ASSERT_TRUE(B.connect(Server.socketPath()).ok());
  ASSERT_TRUE(A.loadModule("t0", HistogramModule, {"kernel-spin"}).ok());
  uint64_t Bins = A.alloc("t0", 64).valueOr(0);

  support::Result<uint64_t> Ticket =
      A.launchAsync("t0", "hist_racy", sim::Dim3(1), sim::Dim3(64),
                    {Bins}, /*DeadlineMs=*/100);
  ASSERT_TRUE(Ticket.ok()) << Ticket.status().describe();

  // B retries on its own thread: its first attempts are refused while
  // A's ticket holds the quota slot (the slot frees only when A reaps).
  serve::RetryOptions Retry;
  Retry.MaxAttempts = 30;
  Retry.BaseDelayMs = 10;
  Retry.MaxDelayMs = 100;
  Retry.Seed = 7;
  B.setRetry(Retry);
  support::Result<Value> Second =
      support::Status(support::ErrorCode::Internal, "not run");
  std::thread Retrier([&] {
    Second = B.launch("t0", "hist_racy", sim::Dim3(1), sim::Dim3(64),
                      {Bins}, /*WantReport=*/false, /*DeadlineMs=*/600);
  });

  // A reaps after its deadline: the terminal state frees the slot and
  // B's next retry is admitted (then spins into its own deadline).
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  support::Result<Value> Done = A.pollUntilDone("t0", Ticket.value());
  ASSERT_TRUE(Done.ok());
  EXPECT_EQ(Done.value().getString("launchStatus"), "DeadlineExceeded");

  Retrier.join();
  ASSERT_FALSE(Second.ok());
  EXPECT_EQ(Second.status().code(), support::ErrorCode::DeadlineExceeded)
      << Second.status().describe();
  Server.stop();
}

TEST(ServeLifecycle, GracefulDrainCancelsStragglersAndRefusesLaunches) {
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  Options.DrainBudgetMs = 400;
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client C;
  ASSERT_TRUE(C.connect(Server.socketPath()).ok());
  ASSERT_TRUE(C.loadModule("t0", HistogramModule, {"kernel-spin"}).ok());
  uint64_t Bins = C.alloc("t0", 64).valueOr(0);

  // A spinning in-flight ticket: the straggler drain must cancel.
  support::Result<uint64_t> Ticket = C.launchAsync(
      "t0", "hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins});
  ASSERT_TRUE(Ticket.ok());

  std::thread Drainer([&Server] { Server.drain(); });
  while (!Server.draining())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Inside the drain window: stats still answers (and says draining),
  // new launches answer typed Draining, polling keeps working.
  support::Result<Value> Stats = C.stats();
  ASSERT_TRUE(Stats.ok()) << Stats.status().describe();
  EXPECT_TRUE(Stats.value().getBool("draining"));
  support::Result<Value> Refused = C.launch(
      "t0", "hist_safe", sim::Dim3(1), sim::Dim3(64), {Bins});
  ASSERT_FALSE(Refused.ok());
  EXPECT_EQ(Refused.status().code(), support::ErrorCode::Draining);

  Drainer.join();
  // Zero orphans: every launch reached a terminal state and the server
  // came down clean.
  EXPECT_FALSE(Server.running());
  EXPECT_EQ(Server.tenants().unresolvedTotal(), 0u);
  Server.stop();
}

//===----------------------------------------------------------------------===//
// Request-scoped tracing over the wire.
//===----------------------------------------------------------------------===//

namespace {

/// Depth of \p SpanId in the parent chain (root = 1); 0 on a broken
/// chain (dangling parent or cycle).
unsigned chainDepth(const std::map<uint64_t, uint64_t> &ParentOf,
                    uint64_t SpanId) {
  unsigned Depth = 0;
  uint64_t Cursor = SpanId;
  while (Cursor != 0) {
    if (++Depth > ParentOf.size())
      return 0; // cycle
    auto It = ParentOf.find(Cursor);
    if (It == ParentOf.end())
      return 0; // dangling parent id
    Cursor = It->second;
  }
  return Depth;
}

/// Validates one request's span tree as returned by the trace op:
/// every span carries a live parent (or is the root), and the deepest
/// chain covers at least \p MinLayers layers. Returns the max depth.
unsigned validateSpanTree(const Value &Trace, uint64_t RequestId) {
  EXPECT_EQ(Trace.getU64("requestId"), RequestId);
  const Value *Spans = Trace.get("spans");
  EXPECT_NE(Spans, nullptr);
  if (!Spans)
    return 0;
  std::map<uint64_t, uint64_t> ParentOf;
  unsigned Roots = 0;
  for (const Value &Span : Spans->items()) {
    uint64_t Id = Span.getU64("spanId");
    EXPECT_NE(Id, 0u);
    ParentOf[Id] = Span.getU64("parentId");
    if (Span.getU64("parentId") == 0)
      ++Roots;
  }
  EXPECT_EQ(ParentOf.size(), Spans->items().size())
      << "duplicate span ids in request " << RequestId;
  EXPECT_EQ(Roots, 1u) << "request " << RequestId
                       << " must have exactly one root (the serve frame)";
  unsigned MaxDepth = 0;
  for (const auto &[Id, Parent] : ParentOf) {
    unsigned Depth = chainDepth(ParentOf, Id);
    EXPECT_GT(Depth, 0u) << "span " << Id << " of request " << RequestId
                         << " has a dead parent chain";
    MaxDepth = std::max(MaxDepth, Depth);
  }
  return MaxDepth;
}

} // namespace

TEST(ServeTracing, SpanTreeConnectsFourLayersAndIsQueryable) {
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  Options.NumQueues = 2;
  Options.TraceSampleRate = 1.0; // head-sample everything
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client C;
  ASSERT_TRUE(C.connect(Server.socketPath()).ok());
  ASSERT_TRUE(C.loadModule("t0", HistogramModule).ok());
  uint64_t Bins = C.alloc("t0", 64).valueOr(0);

  support::Result<Value> Launch = C.launch(
      "t0", "hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins});
  ASSERT_TRUE(Launch.ok()) << Launch.status().describe();
  uint64_t RequestId = Launch.value().getU64("requestId");
  ASSERT_NE(RequestId, 0u) << "launch responses must echo the request id";

  support::Result<Value> Traced = C.trace(RequestId);
  ASSERT_TRUE(Traced.ok()) << Traced.status().describe();
  const Value *Trace = Traced.value().get("trace");
  ASSERT_NE(Trace, nullptr);
  // serve frame -> session launch -> engine lease -> detector shard /
  // watermark wait: the acceptance bar is a connected tree at least
  // four layers deep.
  unsigned Depth = validateSpanTree(*Trace, RequestId);
  EXPECT_GE(Depth, 4u) << Trace->dump();
  // The flow edges that stitch the tracks together survive retention.
  const Value *Flows = Trace->get("flows");
  ASSERT_NE(Flows, nullptr);
  EXPECT_GE(Flows->items().size(), 2u) << "expected 's' and 'f' edges";

  // Unknown requests answer an empty tree, not an error.
  support::Result<Value> Unknown = C.trace(999999999);
  ASSERT_TRUE(Unknown.ok());
  EXPECT_EQ(Unknown.value().get("trace")->get("spans")->items().size(), 0u);

  // A trace request without a requestId is a typed protocol error.
  Value Bad = Value::object();
  Bad.set("op", Value::string("trace"));
  support::Result<Value> Refused = C.call(Bad);
  ASSERT_FALSE(Refused.ok());
  EXPECT_EQ(Refused.status().code(), support::ErrorCode::ProtocolError);
  Server.stop();
}

TEST(ServeTracing, ZeroSampleRateDisablesTracing) {
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  Options.TraceSampleRate = 0.0;
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client C;
  ASSERT_TRUE(C.connect(Server.socketPath()).ok());
  ASSERT_TRUE(C.loadModule("t0", HistogramModule).ok());
  uint64_t Bins = C.alloc("t0", 64).valueOr(0);
  support::Result<Value> Launch = C.launch(
      "t0", "hist_safe", sim::Dim3(1), sim::Dim3(64), {Bins});
  ASSERT_TRUE(Launch.ok());
  uint64_t RequestId = Launch.value().getU64("requestId");
  EXPECT_NE(RequestId, 0u); // ids are still assigned and echoed
  support::Result<Value> Traced = C.trace(RequestId);
  ASSERT_TRUE(Traced.ok());
  EXPECT_EQ(Traced.value().get("trace")->get("spans")->items().size(), 0u);
  Server.stop();
}

TEST(ServeTracing, ConcurrentTenantsYieldWellFormedTrees) {
  // N tenants launching in parallel (blocking and async) against one
  // shared recorder: every retained request must still render as a
  // connected single-root tree whose spans all carry live parents. Run
  // under the TSan preset too — the recorder, sampler and reap-path
  // retention race by construction.
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  Options.NumQueues = 4;
  Options.TraceSampleRate = 1.0;
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  constexpr unsigned NumTenants = 4, Rounds = 3;
  std::vector<std::vector<uint64_t>> Kept(NumTenants);
  std::vector<std::string> Failures(NumTenants);
  std::vector<std::thread> Drivers;
  for (unsigned I = 0; I != NumTenants; ++I)
    Drivers.emplace_back([&, I] {
      std::string Tenant = support::formatString("trace-%u", I);
      serve::Client C;
      if (!C.connect(Server.socketPath()).ok() ||
          !C.loadModule(Tenant, HistogramModule).ok()) {
        Failures[I] = "setup failed";
        return;
      }
      uint64_t Bins = C.alloc(Tenant, 64).valueOr(0);
      for (unsigned Round = 0; Round != Rounds; ++Round) {
        if (Round % 2 == 0) {
          support::Result<Value> Launch = C.launch(
              Tenant, "hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins});
          if (!Launch.ok()) {
            Failures[I] = Launch.status().describe();
            return;
          }
          Kept[I].push_back(Launch.value().getU64("requestId"));
        } else {
          // The request id of an async launch rides the ticket
          // response's envelope (every later poll frame has its own
          // id), so drive the wire directly instead of the wrapper.
          Value Req = Value::object();
          Req.set("op", Value::string("launch"));
          Req.set("tenant", Value::string(Tenant));
          Req.set("kernel", Value::string("hist_safe"));
          Req.set("grid", Value::number(static_cast<uint64_t>(1)));
          Req.set("block", Value::number(static_cast<uint64_t>(64)));
          Value Args = Value::array();
          Args.push(Value::number(Bins));
          Req.set("params", std::move(Args));
          Req.set("async", Value::boolean(true));
          support::Result<Value> Ticketed = C.call(Req);
          if (!Ticketed.ok()) {
            Failures[I] = Ticketed.status().describe();
            return;
          }
          support::Result<Value> Done =
              C.pollUntilDone(Tenant, Ticketed.value().getU64("ticket"));
          if (!Done.ok() || !Done.value().getBool("ok")) {
            Failures[I] = "async round failed";
            return;
          }
          Kept[I].push_back(Ticketed.value().getU64("requestId"));
        }
      }
    });
  for (std::thread &T : Drivers)
    T.join();
  for (unsigned I = 0; I != NumTenants; ++I)
    ASSERT_TRUE(Failures[I].empty()) << "tenant " << I << ": "
                                     << Failures[I];

  serve::Client Inspector;
  ASSERT_TRUE(Inspector.connect(Server.socketPath()).ok());
  for (unsigned I = 0; I != NumTenants; ++I)
    for (uint64_t RequestId : Kept[I]) {
      ASSERT_NE(RequestId, 0u);
      support::Result<Value> Traced = Inspector.trace(RequestId);
      ASSERT_TRUE(Traced.ok()) << Traced.status().describe();
      const Value *Trace = Traced.value().get("trace");
      ASSERT_NE(Trace, nullptr);
      unsigned Depth = validateSpanTree(*Trace, RequestId);
      EXPECT_GE(Depth, 4u)
          << "request " << RequestId << ": " << Trace->dump();
    }
  Server.stop();
}

//===----------------------------------------------------------------------===//
// Flight-recorder blackbox in the RunReport.
//===----------------------------------------------------------------------===//

TEST(ServeBlackbox, WorkerThrowPopulatesBlackboxSection) {
  serve::ServerOptions Options;
  Options.SocketPath = testSocketPath();
  Options.NumQueues = 2;
  ASSERT_TRUE(Options.EngineFaults.add("worker-throw").ok());
  serve::Server Server(std::move(Options));
  ASSERT_TRUE(Server.start().ok());

  serve::Client C;
  ASSERT_TRUE(C.connect(Server.socketPath()).ok());
  ASSERT_TRUE(C.loadModule("t0", HistogramModule).ok());
  uint64_t Bins = C.alloc("t0", 64).valueOr(0);

  support::Result<Value> Launch =
      C.launch("t0", "hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins},
               /*WantReport=*/true);
  ASSERT_TRUE(Launch.ok()) << Launch.status().describe();
  const Value *Doc = Launch.value().get("report");
  ASSERT_NE(Doc, nullptr);
  // The worker threw mid-launch, so the pool healed (or degraded) —
  // either way the launch must carry a populated blackbox.
  const Value *Box = Doc->get("blackbox");
  ASSERT_NE(Box, nullptr) << Doc->dump();
  EXPECT_TRUE(Box->getBool("captured"));
  EXPECT_FALSE(Box->getString("reason").empty());
  const Value *Events = Box->get("events");
  ASSERT_NE(Events, nullptr);
  EXPECT_GT(Events->items().size(), 0u);
  // The ring carries the failure itself, not just lease bookkeeping.
  bool SawFailure = false;
  for (const Value &Event : Events->items())
    if (Event.getString("code") == "worker-failure" ||
        Event.getString("code") == "worker-respawn")
      SawFailure = true;
  EXPECT_TRUE(SawFailure) << Box->dump();

  // A clean follow-up launch carries no blackbox at all.
  support::Result<Value> Clean =
      C.launch("t0", "hist_safe", sim::Dim3(1), sim::Dim3(64), {Bins},
               /*WantReport=*/true);
  if (Clean.ok() && Clean.value().get("report") &&
      !Clean.value().get("report")->get("blackbox"))
    SUCCEED();
  Server.stop();
}
