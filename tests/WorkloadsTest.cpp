//===- WorkloadsTest.cpp - Table 1 generator tests ---------------------------===//

#include "barracuda/Session.h"
#include "workloads/Generator.h"
#include "workloads/Table1.h"

#include <gtest/gtest.h>

using namespace barracuda;
using namespace barracuda::workloads;

namespace {

TEST(Table1, TwentySixSpecs) { EXPECT_EQ(table1Specs().size(), 26u); }

TEST(Table1, ColumnValuesMatchPaper) {
  const BenchmarkSpec *Dwt = findSpec("dwt2d");
  ASSERT_NE(Dwt, nullptr);
  EXPECT_EQ(Dwt->StaticInsns, 35385u);
  EXPECT_EQ(Dwt->TotalThreads, 2304u);
  EXPECT_EQ(Dwt->GlobalMemMB, 6644u);
  EXPECT_EQ(Dwt->RacesGlobal, 3u);

  const BenchmarkSpec *Dxtc = findSpec("dxtc");
  ASSERT_NE(Dxtc, nullptr);
  EXPECT_EQ(Dxtc->RacesShared, 120u);
  EXPECT_EQ(Dxtc->TotalThreads, 1048576u);

  const BenchmarkSpec *Pathfinder = findSpec("pathfinder");
  ASSERT_NE(Pathfinder, nullptr);
  EXPECT_EQ(Pathfinder->RacesShared, 7u);
}

TEST(Generator, ExactStaticInstructionCounts) {
  for (const BenchmarkSpec &Spec : table1Specs()) {
    GeneratedBenchmark Bench = generateBenchmark(Spec);
    Session S;
    ASSERT_TRUE(S.loadModule(Bench.Ptx))
        << Spec.Name << ": " << S.error();
    // Count before the predication transform: the generator emits no
    // guarded memory ops, so the body size is preserved anyway.
    EXPECT_EQ(S.module().staticInstructionCount(), Spec.StaticInsns)
        << Spec.Name;
  }
}

TEST(Generator, GeometryMatchesSpec) {
  const BenchmarkSpec *Spec = findSpec("backprop");
  ASSERT_NE(Spec, nullptr);
  GeneratedBenchmark Bench = generateBenchmark(*Spec);
  EXPECT_EQ(Bench.fullThreads(), Spec->TotalThreads);
  EXPECT_LE(Bench.measuredThreads(), 65536u);
  EXPECT_EQ(Bench.Block.X, Spec->ThreadsPerBlock);
}

TEST(Generator, PlantedRacesAreFound) {
  // A benchmark with global races and one with many shared races.
  for (const char *Name : {"hashtable", "pathfinder"}) {
    const BenchmarkSpec *Spec = findSpec(Name);
    ASSERT_NE(Spec, nullptr);
    GeneratedBenchmark Bench = generateBenchmark(*Spec);
    Session S;
    ASSERT_TRUE(S.loadModule(Bench.Ptx)) << S.error();
    uint64_t Data = S.alloc(Bench.DataBytes);
    support::Result<sim::LaunchResult> Result = S.launchKernel(
        Bench.KernelName, Bench.MeasureGrid, Bench.Block, {Data});
    ASSERT_TRUE(Result.ok()) << Result.status().message();
    EXPECT_EQ(S.races().size(), Bench.ExpectedRaces) << Name;
  }
}

TEST(Generator, RaceFreeBenchmarksAreQuiet) {
  const BenchmarkSpec *Spec = findSpec("streamcluster");
  ASSERT_NE(Spec, nullptr);
  GeneratedBenchmark Bench = generateBenchmark(*Spec);
  Session S;
  ASSERT_TRUE(S.loadModule(Bench.Ptx)) << S.error();
  uint64_t Data = S.alloc(Bench.DataBytes);
  support::Result<sim::LaunchResult> Result = S.launchKernel(
      Bench.KernelName, Bench.MeasureGrid, Bench.Block, {Data});
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_TRUE(S.races().empty());
}

TEST(Generator, PruningReducesInstrumentation) {
  const BenchmarkSpec *Spec = findSpec("hotspot");
  ASSERT_NE(Spec, nullptr);
  GeneratedBenchmark Bench = generateBenchmark(*Spec);
  Session S;
  ASSERT_TRUE(S.loadModule(Bench.Ptx)) << S.error();
  instrument::InstrumentationStats Stats = S.instrumentationStats();
  EXPECT_GT(Stats.InstrumentedUnoptimized, 0u);
  EXPECT_LT(Stats.InstrumentedOptimized, Stats.InstrumentedUnoptimized);
  EXPECT_LT(Stats.unoptimizedFraction(), 0.5);
}

} // namespace
