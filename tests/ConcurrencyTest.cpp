//===- ConcurrencyTest.cpp - threaded host-detector stability ---------------===//
//
// The production pipeline runs one detector thread per queue against a
// device producing records concurrently. Thread interleavings must
// never manufacture false positives on well-synchronized programs, and
// must never lose the verdict on racy ones. These tests hammer the
// threaded path repeatedly (the suite's per-program tests already cross
// it once each).
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "suite/Suite.h"

#include <gtest/gtest.h>

#include <set>

using namespace barracuda;

namespace {

suite::ToolVerdict runOnce(const suite::SuiteProgram &Program) {
  return suite::runBarracuda(Program);
}

TEST(Concurrency, SynchronizedProgramsStayQuietAcrossRuns) {
  // Heavy cross-queue synchronization: the global spinlock and the
  // threadfence reduction. 20 threaded runs each must stay quiet.
  for (const char *Name :
       {"l_spinlock_correct", "f_threadfence_reduction",
        "f_mp_global_fences", "f_grid_handshake"}) {
    const suite::SuiteProgram *Program = suite::findSuiteProgram(Name);
    ASSERT_NE(Program, nullptr) << Name;
    for (int Run = 0; Run != 20; ++Run) {
      suite::ToolVerdict Verdict = runOnce(*Program);
      EXPECT_TRUE(Verdict.Completed) << Name << ": " << Verdict.Detail;
      EXPECT_FALSE(Verdict.ReportedProblem)
          << Name << " run " << Run << ": " << Verdict.Detail;
    }
  }
}

TEST(Concurrency, RacyProgramsAlwaysDetectedAcrossRuns) {
  for (const char *Name :
       {"l_lock_wrong_scope", "f_mp_cta_fences", "g_ww_same_slot",
        "a_atomic_then_plain_read"}) {
    const suite::SuiteProgram *Program = suite::findSuiteProgram(Name);
    ASSERT_NE(Program, nullptr) << Name;
    for (int Run = 0; Run != 20; ++Run) {
      suite::ToolVerdict Verdict = runOnce(*Program);
      EXPECT_TRUE(Verdict.Completed) << Name << ": " << Verdict.Detail;
      EXPECT_TRUE(Verdict.ReportedProblem) << Name << " run " << Run;
    }
  }
}

TEST(Concurrency, ManyQueuesAndManyBlocks) {
  // Hundreds of blocks hammering one counter through a global lock,
  // across 8 queues/detector threads: still certified quiet, and the
  // counter proves the lock actually excluded.
  const suite::SuiteProgram *Base =
      suite::findSuiteProgram("l_spinlock_correct");
  ASSERT_NE(Base, nullptr);
  SessionOptions Options;
  Options.NumQueues = 8;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(Base->Ptx)) << S.error();
  uint64_t Data = S.alloc(64), Lock = S.alloc(64);
  support::Result<sim::LaunchResult> Result = S.launchKernel(
      Base->KernelName, sim::Dim3(96), sim::Dim3(32), {Data, Lock});
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_FALSE(S.anyRaces())
      << (S.races().empty() ? std::string() : S.races()[0].describe());
  EXPECT_EQ(S.readU32(Data), 96u); // one increment per block
  EXPECT_EQ(S.readU32(Lock), 0u);  // lock released
}

TEST(Concurrency, TicketOrderingSurvivesSmallQueues) {
  // Tiny queues force producer back-pressure while detector threads
  // wait on sync tickets: no deadlock, correct verdict.
  const suite::SuiteProgram *Program =
      suite::findSuiteProgram("f_mp_global_fences");
  ASSERT_NE(Program, nullptr);
  SessionOptions Options;
  Options.NumQueues = 3;
  Options.QueueCapacity = 16;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(Program->Ptx)) << S.error();
  uint64_t Data = S.alloc(64), Flag = S.alloc(64);
  support::Result<sim::LaunchResult> Result = S.launchKernel(
      Program->KernelName, Program->Grid, Program->Block, {Data, Flag});
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_FALSE(S.anyRaces());
}

TEST(Concurrency, DistinctRaceKeysStableAcrossThreadedRuns) {
  // The distinct (pc, kinds, space, scope) race keys of a data-racy
  // program must not depend on detector-thread scheduling.
  const suite::SuiteProgram *Program =
      suite::findSuiteProgram("p_grid_stride_overlap");
  ASSERT_NE(Program, nullptr);
  std::set<std::tuple<uint32_t, int, int, int, int>> First;
  for (int Run = 0; Run != 10; ++Run) {
    Session S;
    ASSERT_TRUE(S.loadModule(Program->Ptx));
    uint64_t Buf = S.alloc(4 * 256);
    ASSERT_TRUE(S.launchKernel(Program->KernelName, Program->Grid,
                               Program->Block, {Buf, 256})
                    .ok());
    std::set<std::tuple<uint32_t, int, int, int, int>> Keys;
    for (const auto &Race : S.races())
      Keys.insert({Race.Pc, static_cast<int>(Race.Current),
                   static_cast<int>(Race.Previous),
                   static_cast<int>(Race.Space),
                   static_cast<int>(Race.Scope)});
    if (Run == 0)
      First = Keys;
    else
      EXPECT_EQ(Keys, First) << "run " << Run;
  }
}

} // namespace
