//===- EngineTest.cpp - persistent runtime engine and streams --------------===//
//
// The runtime layer's contract: one detector pool serves every launch of
// a session (no per-launch thread churn), concurrent streams multiplex
// launches over that pool as epochs without mixing their verdicts, and
// producer backpressure on tiny rings never deadlocks against parked or
// ticket-waiting workers.
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "runtime/Engine.h"
#include "runtime/Stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

using namespace barracuda;

namespace {

// One module, two histogram kernels over an 8-bin array: hist_racy does
// a plain read-modify-write (every pair of colliding threads races),
// hist_safe uses atomics (race-free).
const char *HistogramModule = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry hist_racy(
    .param .u64 bins
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<8>;
    ld.param.u64 %rd1, [bins];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    and.b32 %r5, %r4, 7;
    cvt.u64.u32 %rd2, %r5;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r6, [%rd3];
    add.u32 %r6, %r6, 1;
    st.global.u32 [%rd3], %r6;
    ret;
}

.visible .entry hist_safe(
    .param .u64 bins
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<8>;
    ld.param.u64 %rd1, [bins];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    and.b32 %r5, %r4, 7;
    cvt.u64.u32 %rd2, %r5;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    atom.global.add.u32 %r6, [%rd3], 1;
    ret;
}
)";

using RaceKey = std::tuple<uint32_t, int, int, int, int>;

std::set<RaceKey> raceKeys(const Session &S) {
  std::set<RaceKey> Keys;
  for (const auto &Race : S.races())
    Keys.insert({Race.Pc, static_cast<int>(Race.Current),
                 static_cast<int>(Race.Previous),
                 static_cast<int>(Race.Space),
                 static_cast<int>(Race.Scope)});
  return Keys;
}

TEST(Engine, PoolReusedAcrossSequentialLaunches) {
  SessionOptions Options;
  Options.NumQueues = 3;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
  uint64_t Bins = S.alloc(64);
  constexpr unsigned Launches = 10;
  for (unsigned I = 0; I != Launches; ++I) {
    support::Result<sim::LaunchResult> Result =
        S.launchKernel("hist_racy", sim::Dim3(4), sim::Dim3(64), {Bins});
    ASSERT_TRUE(Result.ok()) << Result.status().message();
  }
  EXPECT_TRUE(S.anyRaces());
  // The pool was built once and leased to every launch: no per-launch
  // thread creation.
  EXPECT_EQ(S.engine().threadsEverStarted(), Options.NumQueues);
  EXPECT_EQ(S.engine().launchesBegun(), Launches);
}

TEST(Engine, IdleEpochsAndParkedWorkers) {
  // Epochs that log nothing open and close against parked workers; the
  // pool survives an arbitrary begin/finish sequence.
  runtime::Engine Engine;
  detector::DetectorOptions DetOpts;
  DetOpts.Hier = sim::ThreadHierarchy(
      sim::LaunchConfig{sim::Dim3(1), sim::Dim3(32)});
  for (int I = 0; I != 50; ++I) {
    detector::SharedDetectorState State(DetOpts);
    std::shared_ptr<runtime::Launch> Lease = Engine.begin(State);
    EXPECT_EQ(Lease->recordsLogged(), 0u);
    Lease->finish();
  }
  EXPECT_EQ(Engine.launchesBegun(), 50u);
  EXPECT_EQ(Engine.threadsEverStarted(), Engine.numQueues());
}

TEST(Engine, ConcurrentStreamsMatchSerialRaces) {
  // The racy kernel runs one block so all its records land in one queue:
  // sequential processing there makes its distinct race-key set
  // deterministic (multi-block races legitimately vary with cross-queue
  // interleaving, engine or not). The safe kernel runs four blocks for
  // real overlap.
  // Serial reference: one session, racy then safe.
  std::set<RaceKey> Serial;
  {
    Session S;
    ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
    uint64_t RacyBins = S.alloc(64), SafeBins = S.alloc(64);
    ASSERT_TRUE(
        S.launchKernel("hist_racy", sim::Dim3(1), sim::Dim3(64), {RacyBins})
            .ok());
    ASSERT_TRUE(
        S.launchKernel("hist_safe", sim::Dim3(4), sim::Dim3(64), {SafeBins})
            .ok());
    Serial = raceKeys(S);
  }
  ASSERT_FALSE(Serial.empty());

  // Concurrent: the same two kernels in flight at once on two streams
  // (disjoint buffers), sharing one engine. Verdicts must not bleed
  // between epochs: same distinct races, still none from the safe kernel.
  for (int Run = 0; Run != 5; ++Run) {
    Session S;
    ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
    uint64_t RacyBins = S.alloc(64), SafeBins = S.alloc(64);
    runtime::Stream &A = S.createStream();
    runtime::Stream &B = S.createStream();
    auto RacyResult = S.launchKernelAsync(A, "hist_racy", sim::Dim3(1),
                                          sim::Dim3(64), {RacyBins});
    auto SafeResult = S.launchKernelAsync(B, "hist_safe", sim::Dim3(4),
                                          sim::Dim3(64), {SafeBins});
    ASSERT_TRUE(RacyResult.get().ok());
    ASSERT_TRUE(SafeResult.get().ok());
    S.synchronize();
    EXPECT_EQ(raceKeys(S), Serial) << "run " << Run;
    // The safe kernel's atomic increments survive concurrency intact.
    EXPECT_EQ(S.readU32(SafeBins), 32u);
  }
}

TEST(Engine, StreamsPreserveEnqueueOrder) {
  runtime::Stream Stream;
  std::vector<int> Order;
  std::atomic<int> Done{0};
  for (int I = 0; I != 100; ++I)
    Stream.enqueue([I, &Order, &Done] {
      Order.push_back(I); // single executor: no lock needed
      Done.fetch_add(1);
    });
  Stream.synchronize();
  EXPECT_EQ(Done.load(), 100);
  ASSERT_EQ(Order.size(), 100u);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Order[static_cast<size_t>(I)], I);
}

TEST(Engine, TinyQueueBackpressureCompletes) {
  // 16-slot rings against 4x64 threads of records: producers stall on
  // full rings while workers drain. Sequential case first.
  SessionOptions Options;
  Options.NumQueues = 2;
  Options.QueueCapacity = 16;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
  uint64_t Bins = S.alloc(64);
  support::Result<sim::LaunchResult> Result =
      S.launchKernel("hist_racy", sim::Dim3(4), sim::Dim3(64), {Bins});
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_TRUE(S.anyRaces());
  // The counting sink saw the launch's records.
  EXPECT_GT(S.report().Records.Memory, 0u);
}

TEST(Engine, RelaunchReportsDoNotAccumulate) {
  // Regression: per-launch metric state must reset between launches on a
  // reused engine. The same deterministic kernel launched twice (via
  // launchKernelAsync, which reuses the session's persistent pool) must
  // report identical — not doubled — per-launch numbers.
  SessionOptions Options;
  Options.NumQueues = 2;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
  uint64_t Bins = S.alloc(64);
  runtime::Stream &Lane = S.createStream();

  ASSERT_TRUE(S.launchKernelAsync(Lane, "hist_safe", sim::Dim3(4),
                                  sim::Dim3(64), {Bins})
                  .get()
                  .ok());
  RunReport First = S.report();

  ASSERT_TRUE(S.launchKernelAsync(Lane, "hist_safe", sim::Dim3(4),
                                  sim::Dim3(64), {Bins})
                  .get()
                  .ok());
  RunReport Second = S.report();

  EXPECT_GT(First.Records.Processed, 0u);
  EXPECT_EQ(First.Records.Processed, Second.Records.Processed);
  EXPECT_EQ(First.Records.Memory, Second.Records.Memory);
  EXPECT_EQ(First.Records.Sync, Second.Records.Sync);
  EXPECT_EQ(First.Records.Control, Second.Records.Control);
  EXPECT_EQ(First.Launch.RecordsLogged, Second.Launch.RecordsLogged);
  EXPECT_EQ(First.Detector.Formats.total(),
            Second.Detector.Formats.total());
  EXPECT_EQ(S.engine().launchesBegun(), 2u);
}

TEST(Engine, FullRingWaitsAreCounted) {
  // A full 4-slot ring with a sleeping consumer forces the producer
  // into its backoff; the wait shows up in fullSpins().
  trace::EventQueue Queue(4);
  trace::LogRecord Record{};
  for (int I = 0; I != 4; ++I)
    Queue.push(Record);
  std::thread Consumer([&Queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    trace::LogRecord Out;
    Queue.pop(Out);
  });
  Queue.push(Record); // blocks until the pop frees a slot
  Consumer.join();
  EXPECT_GT(Queue.fullSpins(), 0u);
}

//===----------------------------------------------------------------------===//
// Request lifecycles: deadlines, cooperative cancellation and the
// self-healing pool. A revoked launch must retire through the normal
// watermark — typed terminal code, counters preserved, ledger balanced —
// and a healed pool must be indistinguishable from a fresh one.
//===----------------------------------------------------------------------===//

void expectBalancedLedger(const RunReport &R) {
  EXPECT_EQ(R.Records.Processed + R.Resilience.RecordsDropped +
                R.Resilience.RecordsRejected,
            R.Launch.RecordsLogged)
      << "processed " << R.Records.Processed << " + dropped "
      << R.Resilience.RecordsDropped << " + rejected "
      << R.Resilience.RecordsRejected << " != logged "
      << R.Launch.RecordsLogged;
}

TEST(Lifecycle, DeadlineRetiresASpinningLaunchTyped) {
  // kernel-spin makes warp 0 of block 0 spin forever; the watchdog is at
  // its 500M-instruction default, so the 100ms deadline must be what
  // stops the launch — cooperatively, at a scheduling boundary.
  SessionOptions Options;
  ASSERT_TRUE(Options.Faults.add("kernel-spin").ok());
  Options.DeadlineMs = 100;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
  uint64_t Bins = S.alloc(64);
  support::Result<sim::LaunchResult> Result =
      S.launchKernel("hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins});
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), support::ErrorCode::DeadlineExceeded);
  RunReport R = S.report();
  EXPECT_EQ(R.Launch.Code, support::ErrorCode::DeadlineExceeded);
  expectBalancedLedger(R);
  // The engine survives: the next launch (which also spins — kernel-spin
  // is sticky) is admitted, runs, and retires typed again instead of
  // wedging the pool.
  support::Result<sim::LaunchResult> Again =
      S.launchKernel("hist_safe", sim::Dim3(1), sim::Dim3(64), {Bins});
  ASSERT_FALSE(Again.ok());
  EXPECT_EQ(Again.status().code(), support::ErrorCode::DeadlineExceeded);
  EXPECT_EQ(S.engine().launchesBegun(), 2u);
}

TEST(Lifecycle, TicketCancelRevokesAnInFlightLaunch) {
  SessionOptions Options;
  ASSERT_TRUE(Options.Faults.add("kernel-spin").ok());
  Session S(Options);
  ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
  uint64_t Bins = S.alloc(64);
  runtime::Stream &Lane = S.createStream();
  Session::AsyncLaunch Handle = S.submitKernel(
      Lane, "hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins});
  ASSERT_NE(Handle.Ticket, 0u);
  ASSERT_NE(Handle.Token, nullptr);
  // Let the launch reach its spin, then revoke through the stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(Lane.cancel(Handle.Ticket).ok());
  support::Result<sim::LaunchResult> Result = Handle.Future.get();
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), support::ErrorCode::Cancelled);
  RunReport R = S.report();
  EXPECT_EQ(R.Launch.Code, support::ErrorCode::Cancelled);
  expectBalancedLedger(R);
  // Re-cancelling a tripped token stays a no-op.
  EXPECT_TRUE(Lane.cancel(Handle.Ticket).ok());
}

TEST(Lifecycle, CancelAfterCompletionIsANoOpAndUnknownTicketsAreTyped) {
  Session S;
  ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
  uint64_t Bins = S.alloc(64);
  runtime::Stream &Lane = S.createStream();
  Session::AsyncLaunch Handle = S.submitKernel(
      Lane, "hist_safe", sim::Dim3(1), sim::Dim3(64), {Bins});
  ASSERT_TRUE(Handle.Future.get().ok());
  // The launch completed: revoking its ticket (whether the registry
  // entry is still live or already expired) succeeds without effect.
  EXPECT_TRUE(Lane.cancel(Handle.Ticket).ok());
  Handle.Token.reset();
  Lane.synchronize();
  EXPECT_TRUE(Lane.cancel(Handle.Ticket).ok());
  // A ticket the stream never issued is a typed protocol error.
  support::Status Unknown = Lane.cancel(~0ull);
  ASSERT_FALSE(Unknown.ok());
  EXPECT_EQ(Unknown.code(), support::ErrorCode::ProtocolError);
}

TEST(Lifecycle, PerCallDeadlineOverridesSessionDefault) {
  // The session default is generous; the per-call deadline is what must
  // fire, with its clock starting at submission.
  SessionOptions Options;
  ASSERT_TRUE(Options.Faults.add("kernel-spin").ok());
  Options.DeadlineMs = 60000;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
  uint64_t Bins = S.alloc(64);
  runtime::Stream &Lane = S.createStream();
  Session::AsyncLaunch Handle =
      S.submitKernel(Lane, "hist_racy", sim::Dim3(1), sim::Dim3(64),
                     {Bins}, /*DeadlineMs=*/80);
  support::Result<sim::LaunchResult> Result = Handle.Future.get();
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), support::ErrorCode::DeadlineExceeded);
}

TEST(Lifecycle, SlowDrainDeadlineKeepsTheLedgerBalanced) {
  // slow-consumer throttles every drain batch once it fires; a tiny ring
  // guarantees many batches, so the deadline must trip while records are
  // still in flight — the remainder is dropped with exact accounting,
  // never stranded.
  SessionOptions Options;
  Options.NumQueues = 1;
  Options.QueueCapacity = 16;
  ASSERT_TRUE(Options.Faults.add("slow-consumer@0").ok());
  Options.DeadlineMs = 10;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
  uint64_t Bins = S.alloc(64);
  // 64 blocks log ~450 coalesced records; a 16-slot ring forces ~30
  // throttled batches (2ms each), so the drain alone overruns the
  // deadline by multiples.
  support::Result<sim::LaunchResult> Result =
      S.launchKernel("hist_racy", sim::Dim3(64), sim::Dim3(64), {Bins});
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), support::ErrorCode::DeadlineExceeded);
  RunReport R = S.report();
  EXPECT_EQ(R.Launch.Code, support::ErrorCode::DeadlineExceeded);
  expectBalancedLedger(R);
}

TEST(Lifecycle, PoolHealsAfterWorkerFailureAndMatchesFreshEngine) {
  // Fresh-engine reference verdicts for the one-block racy kernel.
  std::set<RaceKey> Reference;
  {
    Session Ref;
    ASSERT_TRUE(Ref.loadModule(HistogramModule)) << Ref.error();
    uint64_t Bins = Ref.alloc(64);
    ASSERT_TRUE(
        Ref.launchKernel("hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins})
            .ok());
    Reference = raceKeys(Ref);
  }
  ASSERT_FALSE(Reference.empty());

  SessionOptions Options;
  Options.NumQueues = 2;
  ASSERT_TRUE(Options.Faults.add("worker-throw@0").ok());
  Session S(Options);
  ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
  uint64_t Bins = S.alloc(64);

  // Launch 1 rides the fault: one worker throws, its queue is
  // quarantined, the launch degrades but returns with balanced books.
  ASSERT_TRUE(
      S.launchKernel("hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins})
          .ok());
  RunReport First = S.report();
  EXPECT_TRUE(First.Resilience.Degraded);
  EXPECT_GE(First.Resilience.WorkerFailures, 1u);
  EXPECT_GE(First.Resilience.QueuesQuarantined, 1u);
  expectBalancedLedger(First);

  // The next epoch boundary heals the pool: launch 2 runs on a respawned
  // worker and its verdicts are exactly the fresh-engine reference
  // (launch 1's partial findings are a subset, so the cumulative set
  // must equal it too).
  ASSERT_TRUE(
      S.launchKernel("hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins})
          .ok());
  RunReport Second = S.report();
  EXPECT_FALSE(Second.Resilience.Degraded);
  EXPECT_EQ(Second.Resilience.RecordsDropped, 0u);
  EXPECT_GE(Second.Resilience.WorkersRespawned, 1u);
  EXPECT_EQ(Second.Records.Processed, Second.Launch.RecordsLogged);
  EXPECT_GE(S.engine().workersRespawned(), 1u);
  EXPECT_EQ(S.engine().quarantinedQueues(), 0u);
  EXPECT_EQ(raceKeys(S), Reference);
}

TEST(Engine, TinyQueueBackpressureWithConcurrentStreams) {
  // Two launches in flight over the same starved rings: epochs from
  // both interleave in each queue, and the drained-record watermarks
  // must still resolve without deadlock.
  SessionOptions Options;
  Options.NumQueues = 2;
  Options.QueueCapacity = 16;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(HistogramModule)) << S.error();
  uint64_t BinsA = S.alloc(64), BinsB = S.alloc(64);
  runtime::Stream &A = S.createStream();
  runtime::Stream &B = S.createStream();
  auto RA = S.launchKernelAsync(A, "hist_racy", sim::Dim3(4),
                                sim::Dim3(64), {BinsA});
  auto RB = S.launchKernelAsync(B, "hist_racy", sim::Dim3(4),
                                sim::Dim3(64), {BinsB});
  ASSERT_TRUE(RA.get().ok());
  ASSERT_TRUE(RB.get().ok());
  S.synchronize();
  EXPECT_TRUE(S.anyRaces());
}

} // namespace
