//===- DetectorTest.cpp - detection rules over hand-built record streams ---===//

#include "detector/Detector.h"
#include "detector/Host.h"

#include <gtest/gtest.h>

using namespace barracuda;
using namespace barracuda::detector;
using trace::LogRecord;
using trace::MemSpace;
using trace::RecordOp;

namespace {

/// Builds record streams against a 2-block, 64-threads-per-block grid.
class DetectorHarness {
public:
  DetectorHarness() {
    Options.Hier.ThreadsPerBlock = 64;
    Options.Hier.WarpsPerBlock = 2;
    State = std::make_unique<SharedDetectorState>(Options);
    Processor = std::make_unique<QueueProcessor>(*State);
  }

  LogRecord mem(RecordOp Op, uint32_t Warp, uint32_t Pc, MemSpace Space,
                uint32_t Mask, uint64_t Addr) {
    LogRecord Record = trace::makeMemRecord(Op, Warp, Pc, Space, 4, Mask);
    for (unsigned Lane = 0; Lane != 32; ++Lane)
      if ((Mask >> Lane) & 1)
        Record.Addr[Lane] = Addr;
    return Record;
  }

  LogRecord sync(RecordOp Op, uint32_t Warp, uint32_t Pc,
                 trace::SyncScope Scope, uint32_t Mask, uint64_t Addr) {
    LogRecord Record = mem(Op, Warp, Pc, MemSpace::Global, Mask, Addr);
    Record.setScope(Scope);
    Record.SyncSeq = ++Ticket;
    return Record;
  }

  void process(const LogRecord &Record) { Processor->process(Record); }

  uint64_t raceCount() { return State->Reporter.distinctRaces(); }
  std::vector<RaceReport> races() { return State->Reporter.races(); }

  DetectorOptions Options;
  std::unique_ptr<SharedDetectorState> State;
  std::unique_ptr<QueueProcessor> Processor;
  uint32_t Ticket = 0;
};

constexpr uint32_t Lane0 = 1u;
constexpr uint64_t Addr = 0x1000;

TEST(Detector, OrderedSameThreadAccessesAreQuiet) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(H.mem(RecordOp::Read, 0, 2, MemSpace::Global, Lane0, Addr));
  H.process(H.mem(RecordOp::Write, 0, 3, MemSpace::Global, Lane0, Addr));
  EXPECT_EQ(H.raceCount(), 0u);
}

TEST(Detector, InterBlockWriteWriteRace) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(H.mem(RecordOp::Write, 2, 1, MemSpace::Global, Lane0, Addr));
  ASSERT_EQ(H.raceCount(), 1u);
  RaceReport Race = H.races()[0];
  EXPECT_EQ(Race.Scope, RaceScopeKind::InterBlock);
  EXPECT_EQ(Race.Current, AccessKind::Write);
  EXPECT_EQ(Race.Previous, AccessKind::Write);
}

TEST(Detector, IntraBlockClassification) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(H.mem(RecordOp::Read, 1, 2, MemSpace::Global, Lane0, Addr));
  ASSERT_EQ(H.raceCount(), 1u);
  EXPECT_EQ(H.races()[0].Scope, RaceScopeKind::IntraBlock);
}

TEST(Detector, IntraWarpLanesOfOneRecordAreConcurrent) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, 0b11, Addr));
  ASSERT_EQ(H.raceCount(), 1u);
  EXPECT_EQ(H.races()[0].Scope, RaceScopeKind::IntraWarp);
}

TEST(Detector, LockstepInstructionsAreOrdered) {
  // Lane 0 writes, then the *next instruction* lane 1 reads: the endi
  // between them orders the whole warp.
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, 0b01, Addr));
  H.process(H.mem(RecordOp::Read, 0, 2, MemSpace::Global, 0b10, Addr));
  EXPECT_EQ(H.raceCount(), 0u);
}

TEST(Detector, SharedReadersInflateAndAllRace) {
  DetectorHarness H;
  // Two concurrent readers (different blocks), then a writer from a
  // third warp: both readers must be reported against.
  H.process(H.mem(RecordOp::Read, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(H.mem(RecordOp::Read, 2, 1, MemSpace::Global, Lane0, Addr));
  EXPECT_EQ(H.raceCount(), 0u); // reads never race
  H.process(H.mem(RecordOp::Write, 1, 5, MemSpace::Global, Lane0, Addr));
  // One report per (pc, classification): intra-block vs warp 0's read
  // and... warp 1 is in block 0; reader warp 2 is block 1.
  EXPECT_EQ(H.raceCount(), 2u);
}

TEST(Detector, AtomicsDoNotRaceWithEachOther) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Atom, 0, 1, MemSpace::Global, 0b1111, Addr));
  H.process(H.mem(RecordOp::Atom, 2, 1, MemSpace::Global, 0b1111, Addr));
  H.process(H.mem(RecordOp::Atom, 1, 2, MemSpace::Global, Lane0, Addr));
  EXPECT_EQ(H.raceCount(), 0u);
}

TEST(Detector, AtomicVersusPlainRaces) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(H.mem(RecordOp::Atom, 2, 2, MemSpace::Global, Lane0, Addr));
  ASSERT_EQ(H.raceCount(), 1u);
  EXPECT_EQ(H.races()[0].Current, AccessKind::Atomic);
  EXPECT_EQ(H.races()[0].Previous, AccessKind::Write);
}

TEST(Detector, ReleaseAcquireOrdersAcrossBlocks) {
  DetectorHarness H;
  // Block 0 warp 0 writes data, releases L; block 1 warp 0 acquires L
  // and reads the data: no race.
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(H.sync(RecordOp::Rel, 0, 2, trace::SyncScope::Global, Lane0,
                   0x2000));
  H.process(H.sync(RecordOp::Acq, 2, 3, trace::SyncScope::Global, Lane0,
                   0x2000));
  H.process(H.mem(RecordOp::Read, 2, 4, MemSpace::Global, Lane0, Addr));
  EXPECT_EQ(H.raceCount(), 0u);
}

TEST(Detector, BlockScopedSyncDoesNotCrossBlocks) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(H.sync(RecordOp::Rel, 0, 2, trace::SyncScope::Block, Lane0,
                   0x2000));
  H.process(H.sync(RecordOp::Acq, 2, 3, trace::SyncScope::Block, Lane0,
                   0x2000));
  H.process(H.mem(RecordOp::Read, 2, 4, MemSpace::Global, Lane0, Addr));
  EXPECT_EQ(H.raceCount(), 1u);
}

TEST(Detector, BlockScopedSyncWorksWithinBlock) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(H.sync(RecordOp::Rel, 0, 2, trace::SyncScope::Block, Lane0,
                   0x2000));
  H.process(H.sync(RecordOp::Acq, 1, 3, trace::SyncScope::Block, Lane0,
                   0x2000));
  H.process(H.mem(RecordOp::Read, 1, 4, MemSpace::Global, Lane0, Addr));
  EXPECT_EQ(H.raceCount(), 0u);
}

TEST(Detector, GlobalAcquireSeesBlockScopedRelease) {
  // RELBLOCK then acqGlb: the ACQGLOBAL rule joins every block's S_x.
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(H.sync(RecordOp::Rel, 0, 2, trace::SyncScope::Block, Lane0,
                   0x2000));
  H.process(H.sync(RecordOp::Acq, 2, 3, trace::SyncScope::Global, Lane0,
                   0x2000));
  H.process(H.mem(RecordOp::Read, 2, 4, MemSpace::Global, Lane0, Addr));
  EXPECT_EQ(H.raceCount(), 0u);
}

TEST(Detector, ReleaseIsAssignmentNotJoin) {
  // t releases L; later an unrelated u releases L without having
  // acquired it; a fresh acquirer then only synchronizes with u.
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(H.sync(RecordOp::Rel, 0, 2, trace::SyncScope::Global, Lane0,
                   0x2000));
  // u (block 1 warp 3) overwrites the release.
  H.process(H.sync(RecordOp::Rel, 3, 3, trace::SyncScope::Global, Lane0,
                   0x2000));
  H.process(H.sync(RecordOp::Acq, 2, 4, trace::SyncScope::Global, Lane0,
                   0x2000));
  H.process(H.mem(RecordOp::Read, 2, 5, MemSpace::Global, Lane0, Addr));
  EXPECT_EQ(H.raceCount(), 1u); // the write is not ordered to the reader
}

TEST(Detector, BarrierJoinsWholeBlock) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(trace::makeControlRecord(RecordOp::Bar, 0, 2, ~0u));
  H.process(trace::makeControlRecord(RecordOp::Bar, 1, 2, ~0u));
  H.process(H.mem(RecordOp::Read, 1, 3, MemSpace::Global, Lane0, Addr));
  EXPECT_EQ(H.raceCount(), 0u);
}

TEST(Detector, BarrierDoesNotReachOtherBlocks) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(trace::makeControlRecord(RecordOp::Bar, 0, 2, ~0u));
  H.process(trace::makeControlRecord(RecordOp::Bar, 1, 2, ~0u));
  H.process(H.mem(RecordOp::Read, 2, 3, MemSpace::Global, Lane0, Addr));
  EXPECT_EQ(H.raceCount(), 1u);
}

TEST(Detector, BarrierDivergenceReported) {
  DetectorHarness H;
  H.process(trace::makeControlRecord(RecordOp::Bar, 0, 2, 0x0000FFFF));
  H.process(trace::makeControlRecord(RecordOp::Bar, 1, 2, ~0u));
  EXPECT_EQ(H.State->Reporter.barrierErrors().size(), 1u);
}

TEST(Detector, WarpEndCompletesBarrier) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(trace::makeControlRecord(RecordOp::Bar, 1, 2, ~0u));
  // Warp 0 exits without reaching the barrier; warp 1 is released.
  H.process(trace::makeControlRecord(RecordOp::WarpEnd, 0, 0, 0));
  H.process(H.mem(RecordOp::Read, 1, 3, MemSpace::Global, Lane0, Addr));
  // Warp 0's write is NOT ordered before warp 1's read (it never joined
  // the barrier)... but the broadcast optimization covers exited warps'
  // past work; either way no crash and the barrier completed.
  H.process(trace::makeControlRecord(RecordOp::WarpEnd, 1, 0, 0));
  H.process(trace::makeControlRecord(RecordOp::BlockEnd, 0, 0, 0));
  SUCCEED();
}

TEST(Detector, DivergentPathsAreConcurrent) {
  DetectorHarness H;
  LogRecord If = trace::makeControlRecord(RecordOp::If, 0, 5, 0x0000FFFF);
  If.setElseMask(0xFFFF0000);
  H.process(If);
  H.process(H.mem(RecordOp::Write, 0, 6, MemSpace::Global, 0x1, Addr));
  H.process(trace::makeControlRecord(RecordOp::Else, 0, 8, 0xFFFF0000));
  H.process(
      H.mem(RecordOp::Read, 0, 9, MemSpace::Global, 0x10000, Addr));
  ASSERT_EQ(H.raceCount(), 1u);
  EXPECT_EQ(H.races()[0].Scope, RaceScopeKind::IntraWarp);
  // After reconvergence the merged group is ordered after both paths.
  H.process(trace::makeControlRecord(RecordOp::Fi, 0, 10, ~0u));
  H.process(H.mem(RecordOp::Write, 0, 11, MemSpace::Global, 0x1, Addr));
  EXPECT_EQ(H.raceCount(), 1u); // no new race
}

TEST(Detector, SharedMemoryIsPerBlock) {
  // The same shared offset in two blocks is two different locations.
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Shared, Lane0, 0x40));
  H.process(H.mem(RecordOp::Write, 2, 1, MemSpace::Shared, Lane0, 0x40));
  EXPECT_EQ(H.raceCount(), 0u);
}

TEST(Detector, OverlappingSizesConflictByteWise) {
  DetectorHarness H;
  LogRecord Wide =
      H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, 0x1000);
  Wide.AccessSize = 8;
  H.process(Wide);
  // A 4-byte read at +4 overlaps the tail of the 8-byte write.
  H.process(
      H.mem(RecordOp::Read, 2, 2, MemSpace::Global, Lane0, 0x1004));
  EXPECT_EQ(H.raceCount(), 1u);
}

TEST(Detector, StatsCountRecords) {
  DetectorHarness H;
  H.process(H.mem(RecordOp::Write, 0, 1, MemSpace::Global, Lane0, Addr));
  H.process(H.mem(RecordOp::Read, 0, 2, MemSpace::Global, Lane0, Addr));
  EXPECT_EQ(H.Processor->recordsProcessed(), 2u);
  H.Processor->finish();
  EXPECT_EQ(H.State->recordsProcessed(), 2u);
  EXPECT_GT(H.State->formatStats().total(), 0u);
}

} // namespace
