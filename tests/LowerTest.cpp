//===- LowerTest.cpp - lowered vs legacy simulator differential ------------===//
//
// The pre-lowered micro-op path must be observationally identical to the
// per-instruction legacy interpreter: byte-identical trace records, the
// same race findings, the same LaunchResult codes (including the
// watchdog and divergent-barrier deadlock paths), and the same memory
// output. We sweep the full 66-program concurrency suite and a batch of
// random generator seeds through both paths, at the Machine level
// (records, memory) and the Session level (end-to-end findings), and
// lock in the arena determinism the resume/memcmp story depends on.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"

#include "barracuda/Session.h"
#include "instrument/Instrumenter.h"
#include "ptx/Parser.h"
#include "runtime/Engine.h"
#include "sim/Lower.h"
#include "sim/Machine.h"
#include "suite/Suite.h"
#include "support/Format.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace barracuda;
using barracuda::tests::RandomProgram;

namespace {

/// Everything observable about one Machine-level execution.
struct Observed {
  sim::LaunchResult Result;
  std::vector<uint32_t> Blocks;
  std::vector<trace::LogRecord> Records;
  /// Post-run contents of every buffer parameter, in parameter order.
  std::vector<std::vector<uint8_t>> Buffers;
  /// Whether the run actually used a lowered kernel.
  bool UsedLowered = false;
};

/// Executes \p Ptx once on a fresh machine. \p Lowered selects the
/// micro-op path (when the kernel lowers), \p Instrument the full
/// logging pipeline; \p Watchdog overrides MaxWarpInstructions when
/// non-zero. The allocation sequence is deterministic, so two calls
/// observe identical address layouts.
Observed runOnce(const std::string &Ptx, const std::string &KernelName,
                 sim::Dim3 Grid, sim::Dim3 Block,
                 const std::vector<suite::ParamSpec> &Params, bool Lowered,
                 bool Instrument, uint64_t Watchdog = 0) {
  Observed Out;
  std::unique_ptr<ptx::Module> Mod = ptx::parseOrDie(Ptx);
  const ptx::Kernel *K = Mod->findKernel(KernelName);
  if (!K) {
    Out.Result = sim::LaunchResult::failure("missing kernel");
    return Out;
  }
  size_t KernelIndex = static_cast<size_t>(K - Mod->Kernels.data());

  instrument::ModuleInstrumentation Instrumented;
  const instrument::KernelInstrumentation *KI = nullptr;
  if (Instrument) {
    Instrumented = instrument::instrumentModule(
        *Mod, instrument::InstrumenterOptions());
    KI = &Instrumented.Kernels[KernelIndex];
  }

  sim::GlobalMemory Memory;
  sim::Machine::layoutModuleGlobals(*Mod, Memory);
  sim::MachineOptions Options;
  if (Watchdog)
    Options.MaxWarpInstructions = Watchdog;
  sim::Machine Machine(Memory, Options);

  sim::ParamBuilder Builder(*K);
  std::vector<std::pair<uint64_t, uint64_t>> BufferSpans;
  size_t Index = 0;
  for (const suite::ParamSpec &Spec : Params) {
    if (Spec.K == suite::ParamSpec::Kind::Value) {
      Builder.set(Index++, Spec.Value);
      continue;
    }
    uint64_t Addr = Memory.allocate(Spec.BufferBytes);
    if (Spec.HasInitWord)
      Memory.write(Addr, 4, Spec.InitWord);
    BufferSpans.emplace_back(Addr, Spec.BufferBytes);
    Builder.set(Index++, Addr);
  }

  std::unique_ptr<sim::LoweredKernel> Low;
  if (Lowered) {
    Low = sim::lowerKernel(*Mod, *K, KI);
    Out.UsedLowered = Low != nullptr;
  }

  sim::LaunchConfig Config;
  Config.Grid = Grid;
  Config.Block = Block;
  sim::CollectingLogger Logger;
  Out.Result =
      Machine.launch(*Mod, *K, KI, Config, Builder.bytes(),
                     Instrument ? &Logger : nullptr, Low.get());
  Out.Blocks = std::move(Logger.Blocks);
  Out.Records = std::move(Logger.Records);
  for (const auto &Span : BufferSpans) {
    std::vector<uint8_t> Bytes(Span.second);
    for (uint64_t I = 0; I != Span.second; ++I)
      Bytes[I] =
          static_cast<uint8_t>(Memory.read(Span.first + I, 1));
    Out.Buffers.push_back(std::move(Bytes));
  }
  return Out;
}

/// Finds the first record index where two streams differ (SIZE_MAX when
/// equal), for readable failure output.
size_t firstRecordDivergence(const Observed &A, const Observed &B) {
  size_t Limit = std::min(A.Records.size(), B.Records.size());
  for (size_t I = 0; I != Limit; ++I)
    if (std::memcmp(&A.Records[I], &B.Records[I],
                    sizeof(trace::LogRecord)) != 0)
      return I;
  return A.Records.size() == B.Records.size() ? SIZE_MAX : Limit;
}

std::string describeRecord(const Observed &O, size_t I) {
  if (I >= O.Records.size())
    return "(end of stream)";
  const trace::LogRecord &R = O.Records[I];
  return support::formatString(
      "op=%s pc=%u warp=%u mask=0x%x size=%u space=%u seq=%u",
      trace::recordOpName(R.op()), R.Pc, R.Warp, R.ActiveMask,
      R.AccessSize, static_cast<unsigned>(R.space()), R.SyncSeq);
}

/// The differential oracle. Successful runs must match exactly —
/// records, counters, memory. Failed runs compare the structured error
/// code only: fusion retires both halves of a pair in one scheduler
/// slot, so a watchdog threshold can trip one pass earlier and shift
/// FailPc/WarpInstructions without changing the verdict.
void expectSameOutcome(const Observed &Lowered, const Observed &Legacy,
                       const std::string &Context) {
  ASSERT_EQ(Lowered.Result.Ok, Legacy.Result.Ok)
      << Context << "\nlowered: " << Lowered.Result.Error
      << "\nlegacy: " << Legacy.Result.Error;
  if (!Legacy.Result.Ok) {
    EXPECT_EQ(Lowered.Result.Code, Legacy.Result.Code) << Context;
    return;
  }
  EXPECT_EQ(Lowered.Result.ThreadsLaunched,
            Legacy.Result.ThreadsLaunched)
      << Context;
  EXPECT_EQ(Lowered.Result.WarpInstructions,
            Legacy.Result.WarpInstructions)
      << Context;
  EXPECT_EQ(Lowered.Result.RecordsLogged, Legacy.Result.RecordsLogged)
      << Context;
  EXPECT_EQ(Lowered.Result.RecordsPruned, Legacy.Result.RecordsPruned)
      << Context;

  size_t Diff = firstRecordDivergence(Lowered, Legacy);
  EXPECT_EQ(Diff, SIZE_MAX)
      << Context << "\nfirst divergent record at index " << Diff
      << "\nlowered: " << describeRecord(Lowered, Diff)
      << "\nlegacy:  " << describeRecord(Legacy, Diff);
  EXPECT_EQ(Lowered.Blocks, Legacy.Blocks) << Context;

  ASSERT_EQ(Lowered.Buffers.size(), Legacy.Buffers.size()) << Context;
  for (size_t I = 0; I != Lowered.Buffers.size(); ++I)
    EXPECT_EQ(Lowered.Buffers[I], Legacy.Buffers[I])
        << Context << "\nbuffer parameter " << I << " differs";
}

//===----------------------------------------------------------------------===//
// Machine-level differential: the 66-program suite.
//===----------------------------------------------------------------------===//

class SuiteLoweredDifferential
    : public ::testing::TestWithParam<suite::SuiteProgram> {};

TEST_P(SuiteLoweredDifferential, InstrumentedTraceIdentical) {
  const suite::SuiteProgram &Program = GetParam();
  Observed Lowered =
      runOnce(Program.Ptx, Program.KernelName, Program.Grid,
              Program.Block, Program.Params, /*Lowered=*/true,
              /*Instrument=*/true);
  Observed Legacy =
      runOnce(Program.Ptx, Program.KernelName, Program.Grid,
              Program.Block, Program.Params, /*Lowered=*/false,
              /*Instrument=*/true);
  expectSameOutcome(Lowered, Legacy, "program: " + Program.Name);
}

TEST_P(SuiteLoweredDifferential, NativeMemoryIdentical) {
  const suite::SuiteProgram &Program = GetParam();
  Observed Lowered =
      runOnce(Program.Ptx, Program.KernelName, Program.Grid,
              Program.Block, Program.Params, /*Lowered=*/true,
              /*Instrument=*/false);
  Observed Legacy =
      runOnce(Program.Ptx, Program.KernelName, Program.Grid,
              Program.Block, Program.Params, /*Lowered=*/false,
              /*Instrument=*/false);
  expectSameOutcome(Lowered, Legacy,
                    "program: " + Program.Name + " (native)");
}

std::string suiteName(
    const ::testing::TestParamInfo<suite::SuiteProgram> &Info) {
  return Info.param.Name;
}

INSTANTIATE_TEST_SUITE_P(Suite66, SuiteLoweredDifferential,
                         ::testing::ValuesIn(suite::concurrencySuite()),
                         suiteName);

//===----------------------------------------------------------------------===//
// Machine-level differential: random generator seeds.
//===----------------------------------------------------------------------===//

class RandomLoweredDifferential
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomLoweredDifferential, InstrumentedTraceIdentical) {
  RandomProgram Program(GetParam());
  std::vector<suite::ParamSpec> Params = {
      suite::ParamSpec::buffer(4096)};
  sim::Dim3 Grid(Program.Blocks), Block(Program.ThreadsPerBlock);
  Observed Lowered = runOnce(Program.Ptx, "rand", Grid, Block, Params,
                             /*Lowered=*/true, /*Instrument=*/true);
  Observed Legacy = runOnce(Program.Ptx, "rand", Grid, Block, Params,
                            /*Lowered=*/false, /*Instrument=*/true);
  // The generator only emits opcodes the lowerer accepts: if the fast
  // path silently stopped engaging, this differential would be vacuous.
  EXPECT_TRUE(Lowered.UsedLowered)
      << "seed " << GetParam() << " did not lower\n" << Program.Ptx;
  expectSameOutcome(Lowered, Legacy,
                    support::formatString("seed %llu",
                                          static_cast<unsigned long long>(
                                              GetParam())) +
                        "\n" + Program.Ptx);
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, RandomLoweredDifferential,
                         ::testing::Range<uint64_t>(1, 46));

//===----------------------------------------------------------------------===//
// Failure paths: watchdog and divergent-barrier deadlock.
//===----------------------------------------------------------------------===//

TEST(LoweredFailurePaths, WatchdogCodeMatches) {
  std::string Ptx = suite::makeTestKernel("spin", ".param .u64 p0", R"(
    ld.param.u64 %rd1, [p0];
loop:
    bra loop;
)");
  std::vector<suite::ParamSpec> Params = {suite::ParamSpec::buffer(64)};
  Observed Lowered =
      runOnce(Ptx, "spin", sim::Dim3(1), sim::Dim3(32), Params,
              /*Lowered=*/true, /*Instrument=*/true, /*Watchdog=*/2000);
  Observed Legacy =
      runOnce(Ptx, "spin", sim::Dim3(1), sim::Dim3(32), Params,
              /*Lowered=*/false, /*Instrument=*/true, /*Watchdog=*/2000);
  EXPECT_FALSE(Lowered.Result.Ok);
  expectSameOutcome(Lowered, Legacy, "watchdog spin kernel");
}

TEST(LoweredFailurePaths, DivergentBarrierDeadlockCodeMatches) {
  // Two warps: warp 0 branches around the barrier, warp 1 arrives at
  // it. The block can never release, and both execution paths must
  // classify the hang identically.
  std::string Ptx = suite::makeTestKernel("halfbar", ".param .u64 p0", R"(
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    setp.lt.u32 %p1, %r1, 32;
    @%p1 bra skip;
    bar.sync 0;
skip:
    ret;
)");
  std::vector<suite::ParamSpec> Params = {suite::ParamSpec::buffer(64)};
  Observed Lowered =
      runOnce(Ptx, "halfbar", sim::Dim3(1), sim::Dim3(64), Params,
              /*Lowered=*/true, /*Instrument=*/true);
  Observed Legacy =
      runOnce(Ptx, "halfbar", sim::Dim3(1), sim::Dim3(64), Params,
              /*Lowered=*/false, /*Instrument=*/true);
  expectSameOutcome(Lowered, Legacy, "divergent barrier kernel");
}

//===----------------------------------------------------------------------===//
// Lowering determinism and fusion coverage.
//===----------------------------------------------------------------------===//

TEST(LowerDeterminism, ByteIdenticalArenas) {
  for (const suite::SuiteProgram &Program : suite::concurrencySuite()) {
    std::unique_ptr<ptx::Module> Mod = ptx::parseOrDie(Program.Ptx);
    const ptx::Kernel *K = Mod->findKernel(Program.KernelName);
    ASSERT_NE(K, nullptr) << Program.Name;
    size_t KernelIndex = static_cast<size_t>(K - Mod->Kernels.data());
    instrument::ModuleInstrumentation Instr = instrument::instrumentModule(
        *Mod, instrument::InstrumenterOptions());

    const instrument::KernelInstrumentation *Variants[] = {
        nullptr, &Instr.Kernels[KernelIndex]};
    for (const instrument::KernelInstrumentation *KI : Variants) {
      std::unique_ptr<sim::LoweredKernel> First =
          sim::lowerKernel(*Mod, *K, KI);
      std::unique_ptr<sim::LoweredKernel> Second =
          sim::lowerKernel(*Mod, *K, KI);
      ASSERT_EQ(First != nullptr, Second != nullptr) << Program.Name;
      if (!First)
        continue;
      ASSERT_EQ(First->Uops.size(), Second->Uops.size()) << Program.Name;
      EXPECT_EQ(std::memcmp(First->Uops.data(), Second->Uops.data(),
                            First->byteSize()),
                0)
          << "lowering " << Program.Name << " twice differs";
      EXPECT_EQ(First->BlockStarts, Second->BlockStarts) << Program.Name;
      EXPECT_EQ(First->FusedPairs, Second->FusedPairs) << Program.Name;
      EXPECT_EQ(First->FusedBranches, Second->FusedBranches)
          << Program.Name;
    }
  }
}

TEST(LowerCoverage, IdentityPcMapAndFusion) {
  uint64_t LoweredKernels = 0, FusedPairs = 0, FusedBranches = 0;
  for (const suite::SuiteProgram &Program : suite::concurrencySuite()) {
    std::unique_ptr<ptx::Module> Mod = ptx::parseOrDie(Program.Ptx);
    const ptx::Kernel *K = Mod->findKernel(Program.KernelName);
    ASSERT_NE(K, nullptr) << Program.Name;
    std::unique_ptr<sim::LoweredKernel> Low =
        sim::lowerKernel(*Mod, *K, nullptr);
    if (!Low)
      continue;
    ++LoweredKernels;
    FusedPairs += Low->FusedPairs;
    FusedBranches += Low->FusedBranches;
    // The identity PC map is what lets branch targets, profiler arrays
    // and trace records skip translation entirely.
    ASSERT_EQ(Low->Uops.size(), K->Body.size()) << Program.Name;
    for (size_t Pc = 0; Pc != Low->Uops.size(); ++Pc)
      ASSERT_EQ(Low->Uops[Pc].Pc, Pc) << Program.Name;
    ASSERT_FALSE(Low->BlockStarts.empty()) << Program.Name;
    EXPECT_EQ(Low->BlockStarts.front(), 0u) << Program.Name;
  }
  // The micro-op path must actually engage on the suite, and both
  // fusion kinds must fire somewhere in it.
  EXPECT_GE(LoweredKernels, 33u);
  EXPECT_GT(FusedPairs, 0u);
  EXPECT_GT(FusedBranches, 0u);
}

//===----------------------------------------------------------------------===//
// Session-level differential: end-to-end findings with the full
// pipeline (engine, queues, detector) in the loop.
//===----------------------------------------------------------------------===//

runtime::Engine &lowerTestEngine() {
  static runtime::Engine Engine;
  return Engine;
}

struct SessionOutcome {
  bool Ok = false;
  support::ErrorCode Code = support::ErrorCode::Ok;
  bool SimLowered = false;
  std::vector<std::string> Races;
  size_t BarrierErrors = 0;
};

SessionOutcome runSession(const suite::SuiteProgram &Program,
                          bool SimLowered) {
  SessionOutcome Out;
  SessionOptions Opts;
  Opts.SharedEngine = &lowerTestEngine();
  Opts.SimLowered = SimLowered;
  Session S(Opts);
  if (!S.loadModule(Program.Ptx))
    return Out;
  std::vector<uint64_t> Params;
  for (const suite::ParamSpec &Spec : Program.Params) {
    if (Spec.K == suite::ParamSpec::Kind::Value) {
      Params.push_back(Spec.Value);
      continue;
    }
    uint64_t Addr = S.alloc(Spec.BufferBytes);
    if (Spec.HasInitWord)
      S.writeU32(Addr, Spec.InitWord);
    Params.push_back(Addr);
  }
  support::Result<sim::LaunchResult> Result = S.launchKernel(
      Program.KernelName, Program.Grid, Program.Block, Params);
  Out.Ok = Result.ok();
  Out.Code = Result.status().code();
  Out.SimLowered = S.report().Launch.SimLowered;
  for (const detector::RaceReport &Race : S.races())
    Out.Races.push_back(Race.describe());
  Out.BarrierErrors = S.barrierErrors().size();
  return Out;
}

TEST(LowerSession, SuiteVerdictsMatchEndToEnd) {
  // The full pipeline's race *attribution* (which thread pair and pc a
  // race is first pinned to, occurrence counts) depends on detector
  // worker interleaving and varies run to run even within one mode, so
  // the end-to-end differential compares at verdict granularity — the
  // record streams themselves are compared byte-for-byte in the
  // Machine-level differential above, where execution is deterministic.
  uint64_t LoweredRuns = 0;
  for (const suite::SuiteProgram &Program : suite::concurrencySuite()) {
    SessionOutcome Lowered = runSession(Program, /*SimLowered=*/true);
    SessionOutcome Legacy = runSession(Program, /*SimLowered=*/false);
    ASSERT_EQ(Lowered.Ok, Legacy.Ok) << Program.Name;
    EXPECT_EQ(Lowered.Code, Legacy.Code) << Program.Name;
    EXPECT_EQ(Lowered.Races.empty(), Legacy.Races.empty())
        << Program.Name;
    EXPECT_EQ(Lowered.BarrierErrors != 0, Legacy.BarrierErrors != 0)
        << Program.Name;
    bool LoweredProblem =
        !Lowered.Races.empty() || Lowered.BarrierErrors != 0;
    EXPECT_EQ(LoweredProblem, Program.expectProblem()) << Program.Name;
    // --legacy-sim must really disable the fast path.
    EXPECT_FALSE(Legacy.SimLowered) << Program.Name;
    if (Lowered.SimLowered)
      ++LoweredRuns;
  }
  EXPECT_GE(LoweredRuns, 33u);
}

} // namespace
