//===- PtvcTest.cpp - compressed per-thread vector clock unit tests --------===//

#include "detector/Ptvc.h"

#include <gtest/gtest.h>

using namespace barracuda;
using namespace barracuda::detector;

namespace {

sim::ThreadHierarchy hierarchy(uint32_t ThreadsPerBlock) {
  sim::ThreadHierarchy Hier;
  Hier.ThreadsPerBlock = ThreadsPerBlock;
  Hier.WarpsPerBlock = (ThreadsPerBlock + 31) / 32;
  return Hier;
}

TEST(Ptvc, InitialState) {
  WarpClocks W(0, ~0u, hierarchy(64));
  EXPECT_EQ(W.selfClock(), 1u);
  EXPECT_EQ(W.format(), PtvcFormat::Converged);
  EXPECT_EQ(W.activeMask(), ~0u);
  // Own entry is the self clock; mates are self-1; outside is zero.
  EXPECT_EQ(W.entryFor(0, W.tidOfLane(0), 0), 1u);
  EXPECT_EQ(W.entryFor(0, W.tidOfLane(5), 0), 0u);
  EXPECT_EQ(W.entryFor(0, /*Other=*/40, 0), 0u);   // other warp, block 0
  EXPECT_EQ(W.entryFor(0, /*Other=*/100, 1), 0u);  // other block
}

TEST(Ptvc, EndInsnAdvancesLockstep) {
  WarpClocks W(0, ~0u, hierarchy(32));
  W.endInsn();
  W.endInsn();
  EXPECT_EQ(W.selfClock(), 3u);
  EXPECT_EQ(W.entryFor(3, W.tidOfLane(3), 0), 3u);
  EXPECT_EQ(W.entryFor(3, W.tidOfLane(9), 0), 2u);
  EXPECT_EQ(W.format(), PtvcFormat::Converged);
}

TEST(Ptvc, DivergenceSplitsKnowledge) {
  WarpClocks W(0, ~0u, hierarchy(32));
  W.endInsn();               // self = 2
  uint32_t Then = 0x0000FFFF, Else = 0xFFFF0000;
  W.branchIf(Then, Else);    // then runs first at self=3
  EXPECT_EQ(W.selfClock(), 3u);
  EXPECT_EQ(W.activeMask(), Then);
  EXPECT_EQ(W.format(), PtvcFormat::Diverged);
  // A then thread knows then-mates at 2 and else threads at 1 (the
  // pre-branch fork).
  EXPECT_EQ(W.entryFor(0, W.tidOfLane(1), 0), 2u);
  EXPECT_EQ(W.entryFor(0, W.tidOfLane(20), 0), 1u);

  W.endInsn(); // then path works; self = 4
  W.branchElse(Else);
  EXPECT_EQ(W.activeMask(), Else);
  EXPECT_EQ(W.selfClock(), 3u); // else forked from pre-branch time 2
  // Else threads never saw the then path's work.
  EXPECT_EQ(W.entryFor(20, W.tidOfLane(0), 0), 1u);

  W.branchFi(~0u);
  EXPECT_EQ(W.format(), PtvcFormat::Converged);
  // Merged time exceeds both paths' final times.
  EXPECT_GT(W.selfClock(), 4u);
  EXPECT_EQ(W.entryFor(0, W.tidOfLane(20), 0), W.selfClock() - 1);
}

TEST(Ptvc, NestedDivergenceUsesWarpVector) {
  WarpClocks W(0, ~0u, hierarchy(32));
  W.branchIf(0x0000FFFF, 0xFFFF0000);
  W.endInsn();
  W.branchIf(0x000000FF, 0x0000FF00); // nested split of the then path
  EXPECT_EQ(W.format(), PtvcFormat::NestedDiverged);
  EXPECT_EQ(W.frameCount(), 5u);
  // Inner then threads: the inner-else lanes forked at the inner branch
  // (one endInsn plus the IF fork ago), the outer-else lanes earlier
  // still.
  ClockVal Self = W.selfClock();
  EXPECT_EQ(W.entryFor(0, W.tidOfLane(9), 0), Self - 2);
  EXPECT_LT(W.entryFor(0, W.tidOfLane(20), 0), Self - 2);
  W.branchElse(0x0000FF00);
  W.branchFi(0x0000FFFF);
  W.branchElse(0xFFFF0000);
  W.branchFi(~0u);
  EXPECT_EQ(W.format(), PtvcFormat::Converged);
  EXPECT_EQ(W.frameCount(), 1u);
}

TEST(Ptvc, BarrierBroadcastsBlockMax) {
  WarpClocks W(0, ~0u, hierarchy(64));
  W.endInsn();
  W.barrierJoin(/*BlockMax=*/10);
  EXPECT_EQ(W.selfClock(), 11u);
  // Knowledge of the whole block is the broadcast max.
  EXPECT_EQ(W.entryFor(0, /*Other=*/40, 0), 10u); // other warp, same block
  EXPECT_EQ(W.entryFor(0, /*Other=*/999, 3), 0u); // other block untouched
  EXPECT_EQ(W.format(), PtvcFormat::Converged);
}

TEST(Ptvc, AcquireBringsPointToPointKnowledge) {
  WarpClocks W(0, ~0u, hierarchy(32));
  CompactClock Incoming;
  Incoming.raiseEntry(/*Tid=*/500, 7); // a thread in block 15
  Incoming.raiseBlockFloor(/*Block=*/15, 3);
  W.acquire(Incoming);
  EXPECT_EQ(W.format(), PtvcFormat::SparseVc);
  EXPECT_EQ(W.entryFor(0, 500, 15), 7u);
  EXPECT_EQ(W.entryFor(0, 501, 15), 3u); // covered by the floor
  EXPECT_EQ(W.entryFor(0, 200, 6), 0u);
}

TEST(Ptvc, AcquireOfOwnBlockRaisesBlockClock) {
  WarpClocks W(0, ~0u, hierarchy(64)); // warp 0 of block 0
  W.endInsn();
  W.endInsn(); // self = 3
  CompactClock Incoming;
  Incoming.raiseBlockFloor(/*Block=*/0, 2);
  W.acquire(Incoming);
  EXPECT_EQ(W.entryFor(0, /*Other=*/40, 0), 2u); // warp 1 of block 0
  // Group mates keep lockstep knowledge (floor below self-1).
  EXPECT_EQ(W.entryFor(0, W.tidOfLane(1), 0), 2u);
}

TEST(Ptvc, ReleaseSnapshotRoundTrips) {
  WarpClocks W(2, ~0u, hierarchy(32)); // warp 2 => block 2
  W.endInsn();
  W.endInsn(); // self = 3
  CompactClock Snapshot;
  W.releaseSnapshot(/*Lane=*/4, Snapshot);
  // The releasing lane contributes its own clock, mates self-1, and the
  // block floor.
  EXPECT_EQ(Snapshot.get(W.tidOfLane(4), 2), 3u);
  EXPECT_EQ(Snapshot.get(W.tidOfLane(5), 2), 2u);

  // An acquiring warp in another block learns exactly that.
  WarpClocks Acquirer(0, ~0u, hierarchy(32));
  Acquirer.acquire(Snapshot);
  EXPECT_EQ(Acquirer.entryFor(0, W.tidOfLane(4), 2), 3u);
  EXPECT_EQ(Acquirer.entryFor(0, W.tidOfLane(5), 2), 2u);
}

TEST(Ptvc, PartialWarpResidentMask) {
  // 20-thread block: lanes 20..31 do not exist.
  WarpClocks W(0, 0xFFFFF, hierarchy(20));
  EXPECT_EQ(W.residentMask(), 0xFFFFFu);
  EXPECT_EQ(W.format(), PtvcFormat::Converged);
  W.branchIf(0x3FF, 0xFFC00);
  EXPECT_EQ(W.format(), PtvcFormat::Diverged);
  W.branchElse(0xFFC00);
  W.branchFi(0xFFFFF);
  EXPECT_EQ(W.format(), PtvcFormat::Converged);
}

TEST(Ptvc, BarrierPrunesSubsumedSparseEntries) {
  WarpClocks W(0, ~0u, hierarchy(64)); // block 0
  CompactClock Incoming;
  Incoming.raiseEntry(/*Tid=*/40, 2); // same-block thread, warp 1
  W.acquire(Incoming);
  EXPECT_EQ(W.format(), PtvcFormat::SparseVc);
  W.barrierJoin(5); // BlockClock = 5 subsumes the entry for thread 40
  EXPECT_EQ(W.format(), PtvcFormat::Converged);
  EXPECT_EQ(W.entryFor(0, 40, 0), 5u);
}

TEST(Ptvc, MemoryStaysSmallWhenConverged) {
  WarpClocks W(0, ~0u, hierarchy(32));
  for (int I = 0; I != 1000; ++I)
    W.endInsn();
  EXPECT_LE(W.memoryBytes(), sizeof(WarpClocks) + 64);
}

TEST(Clock, CompactClockJoinAndFloors) {
  CompactClock A, B;
  A.raiseEntry(1, 5);
  A.raiseBlockFloor(0, 2);
  B.raiseEntry(1, 3);
  B.raiseEntry(2, 9);
  B.raiseBlockFloor(0, 4);
  A.joinFrom(B);
  EXPECT_EQ(A.get(1, 0), 5u); // max survives
  EXPECT_EQ(A.get(2, 0), 9u);
  EXPECT_EQ(A.get(7, 0), 4u); // floor applies to any thread of block 0
  EXPECT_EQ(A.get(7, 1), 0u);
  A.clear();
  EXPECT_TRUE(A.empty());
}

TEST(Clock, EpochBottom) {
  Epoch E;
  EXPECT_TRUE(E.isBottom());
  Epoch F{3, 7};
  EXPECT_FALSE(F.isBottom());
  EXPECT_TRUE((F == Epoch{3, 7}));
}

} // namespace
