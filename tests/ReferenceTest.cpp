//===- ReferenceTest.cpp - exact-rules reference detector tests -------------===//
//
// Pins the uncompressed reference implementation (the oracle of the
// property suite) on hand-built traces, and reconstructs the Figure 7
// walk-through — converged, barrier, diverged, nested-diverged and
// sparse clock states — against the production PTVCs using a simulated
// 4-lane warp (the figure draws 3-thread warps).
//
//===----------------------------------------------------------------------===//

#include "baseline/Reference.h"
#include "detector/Ptvc.h"

#include <gtest/gtest.h>

using namespace barracuda;
using namespace barracuda::detector;
using baseline::ReferenceDetector;
using trace::LogRecord;
using trace::MemSpace;
using trace::RecordOp;

namespace {

sim::ThreadHierarchy smallHier() {
  sim::ThreadHierarchy Hier;
  Hier.ThreadsPerBlock = 8;
  Hier.WarpsPerBlock = 2;
  Hier.WarpSize = 4;
  return Hier;
}

LogRecord mem(RecordOp Op, uint32_t Warp, uint32_t Pc, uint32_t Mask,
              uint64_t Addr) {
  LogRecord Record = trace::makeMemRecord(Op, Warp, Pc, MemSpace::Global,
                                          4, Mask);
  for (unsigned Lane = 0; Lane != 32; ++Lane)
    if ((Mask >> Lane) & 1)
      Record.Addr[Lane] = Addr;
  return Record;
}

TEST(Reference, DetectsBasicRaces) {
  ReferenceDetector Ref(smallHier());
  Ref.process(mem(RecordOp::Write, 0, 1, 0x1, 0x100));
  Ref.process(mem(RecordOp::Write, 2, 1, 0x1, 0x100)); // other block
  EXPECT_EQ(Ref.reporter().distinctRaces(), 1u);
  EXPECT_EQ(Ref.reporter().races()[0].Scope, RaceScopeKind::InterBlock);
}

TEST(Reference, LockstepOrdersWarp) {
  // Feasible warp-synchronous exchange: all four lanes write their own
  // slot, then (next instruction) read their neighbour's. The endi
  // between the instructions orders the warp, so no race.
  ReferenceDetector Ref(smallHier());
  LogRecord Write = trace::makeMemRecord(RecordOp::Write, 0, 1,
                                         MemSpace::Global, 4, 0xF);
  LogRecord Read = trace::makeMemRecord(RecordOp::Read, 0, 2,
                                        MemSpace::Global, 4, 0xF);
  for (unsigned Lane = 0; Lane != 4; ++Lane) {
    Write.Addr[Lane] = 0x100 + 4 * Lane;
    Read.Addr[Lane] = 0x100 + 4 * ((Lane + 1) % 4);
  }
  Ref.process(Write);
  Ref.process(Read);
  EXPECT_EQ(Ref.reporter().distinctRaces(), 0u);

  // Without the intervening endi (same instruction) the accesses would
  // be concurrent: a second write record targeting a mate's slot races.
  LogRecord Clash = trace::makeMemRecord(RecordOp::Write, 1, 5,
                                         MemSpace::Global, 4, 0x3);
  Clash.Addr[0] = 0x300;
  Clash.Addr[1] = 0x300; // lanes 0 and 1 collide within one instruction
  Ref.process(Clash);
  EXPECT_EQ(Ref.reporter().distinctRaces(), 1u);
  EXPECT_EQ(Ref.reporter().races()[0].Scope, RaceScopeKind::IntraWarp);
}

TEST(Reference, ExactVectorClocksAfterEndi) {
  ReferenceDetector Ref(smallHier());
  // One memory instruction by lanes {0,1}: both threads join and fork.
  Ref.process(mem(RecordOp::Read, 0, 1, 0x3, 0x100));
  const baseline::FullVc &T0 = Ref.clockOf(0);
  const baseline::FullVc &T1 = Ref.clockOf(1);
  EXPECT_EQ(T0.get(0), 2u); // own entry incremented
  EXPECT_EQ(T0.get(1), 1u); // knows the mate's pre-fork time
  EXPECT_EQ(T1.get(1), 2u);
  EXPECT_EQ(T1.get(0), 1u);
  EXPECT_EQ(T0.get(5), 0u); // no knowledge outside the warp
}

TEST(Reference, ReleaseAcquireChains) {
  ReferenceDetector Ref(smallHier());
  LogRecord Rel = mem(RecordOp::Rel, 0, 2, 0x1, 0x200);
  Rel.setScope(trace::SyncScope::Global);
  Rel.SyncSeq = 1;
  LogRecord Acq = mem(RecordOp::Acq, 2, 3, 0x1, 0x200);
  Acq.setScope(trace::SyncScope::Global);
  Acq.SyncSeq = 2;

  Ref.process(mem(RecordOp::Write, 0, 1, 0x1, 0x100));
  Ref.process(Rel);
  Ref.process(Acq);
  Ref.process(mem(RecordOp::Read, 2, 4, 0x1, 0x100));
  EXPECT_EQ(Ref.reporter().distinctRaces(), 0u);
  // The acquirer's clock dominates the releaser's at release time.
  EXPECT_GE(Ref.clockOf(8).get(0), 2u);
}

TEST(Reference, BarrierJoinsBlockOnly) {
  ReferenceDetector Ref(smallHier());
  Ref.process(mem(RecordOp::Write, 0, 1, 0x1, 0x100));
  Ref.process(trace::makeControlRecord(RecordOp::Bar, 0, 2, 0xF));
  Ref.process(trace::makeControlRecord(RecordOp::Bar, 1, 2, 0xF));
  Ref.process(mem(RecordOp::Read, 1, 3, 0x1, 0x100)); // same block: ok
  Ref.process(mem(RecordOp::Read, 2, 3, 0x1, 0x100)); // other block: race
  EXPECT_EQ(Ref.reporter().distinctRaces(), 1u);
}

//===--- the Figure 7 walk-through on 4-lane warps ----------------------===//

TEST(Figure7, FormatsTrackTheExampleExecution) {
  sim::ThreadHierarchy Hier = smallHier(); // 2 warps/block, 4 lanes
  WarpClocks W(/*GlobalWarp=*/0, /*ResidentMask=*/0xF, Hier);

  // Execution 1 (CONVERGED): lockstep work, no synchronization yet.
  W.endInsn();
  EXPECT_EQ(W.format(), PtvcFormat::Converged);
  EXPECT_EQ(W.entryFor(1, /*tid=*/6, 0), 0u); // other warp: implicit 0

  // Execution 2: a block-level barrier raises the block clock.
  W.barrierJoin(/*BlockMax=*/2);
  EXPECT_EQ(W.format(), PtvcFormat::Converged);
  EXPECT_EQ(W.entryFor(1, 6, 0), 2u);
  EXPECT_EQ(W.selfClock(), 3u);

  // Execution 3 (DIVERGED): T0 versus T1..T3 after an if.
  W.branchIf(/*Then=*/0x1, /*Else=*/0xE);
  EXPECT_EQ(W.format(), PtvcFormat::Diverged);
  // The active path knows the inactive lanes at the pre-branch time.
  EXPECT_EQ(W.entryFor(0, 1, 0), W.selfClock() - 2);

  // Execution 4 (NESTEDDIVERGED): a second split on the else path.
  W.endInsn();
  W.branchElse(0xE);
  W.branchIf(/*Then=*/0x2, /*Else=*/0xC);
  EXPECT_EQ(W.format(), PtvcFormat::NestedDiverged);
  // T1 knows T0 and T2/T3 at *different* times now.
  EXPECT_NE(W.entryFor(1, 0, 0), W.entryFor(1, 2, 0));

  // Execution 5 (SPARSEVC): T1 acquires a lock released by a thread in
  // a completely different block (T23 at time 6).
  CompactClock LockClock;
  LockClock.raiseEntry(/*Tid=*/23, 6);
  W.acquire(LockClock);
  EXPECT_EQ(W.format(), PtvcFormat::SparseVc);
  EXPECT_EQ(W.entryFor(1, 23, Hier.blockOf(23)), 6u);

  // Reconvergence compresses back down once everything merges.
  W.branchElse(0xC);
  W.branchFi(0xE);
  W.branchFi(0xF);
  // The sparse point-to-point knowledge survives reconvergence...
  EXPECT_EQ(W.entryFor(0, 23, Hier.blockOf(23)), 6u);
  // ...and a barrier beyond it does not erase other-block entries.
  W.barrierJoin(20);
  EXPECT_EQ(W.entryFor(0, 23, Hier.blockOf(23)), 6u);
}

} // namespace
