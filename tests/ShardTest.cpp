//===- ShardTest.cpp - sharded vs single-table detector differential -------===//
//
// The address-range-sharded detector must be an exact replay of the
// single-table detector: byte-identical race reports — including dynamic
// occurrence counts — and identical barrier verdicts, at every shard
// count and queue layout. These tests sweep the full 66-program
// concurrency suite and a batch of random-generator seeds through the
// lockstep (deterministic) drain at shards {1, 2, 7, 16} x queues
// {1, 2}, all compared against the single-shard single-queue oracle, and
// then re-run the suite through threaded engine sessions so the mailbox,
// ticket-marker and completion protocols execute under real concurrency
// (the TSan/ASan presets build this file too).
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"

#include "barracuda/Session.h"
#include "detector/Detector.h"
#include "detector/Host.h"
#include "instrument/Instrumenter.h"
#include "ptx/Parser.h"
#include "sim/Machine.h"
#include "suite/Suite.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

using namespace barracuda;
using barracuda::tests::RandomProgram;

namespace {

using RaceKey = std::tuple<uint32_t, detector::AccessKind,
                           detector::AccessKind, trace::MemSpace,
                           detector::RaceScopeKind, uint64_t>;

std::vector<RaceKey> keysOf(const detector::RaceReporter &Reporter) {
  std::vector<RaceKey> Keys;
  for (const detector::RaceReport &Race : Reporter.races())
    Keys.emplace_back(Race.Pc, Race.Current, Race.Previous, Race.Space,
                      Race.Scope, Race.Count);
  return Keys;
}

std::string describeAll(const detector::RaceReporter &Reporter) {
  std::string Out;
  for (const detector::RaceReport &Race : Reporter.races())
    Out += "  " + Race.describe() + "\n";
  return Out.empty() ? "  (none)\n" : Out;
}

/// One executed trace, ready to replay through detector configs.
struct Collected {
  std::vector<uint32_t> Blocks;
  std::vector<trace::LogRecord> Records;
  sim::ThreadHierarchy Hier;
};

/// Executes the kernel once on a fresh machine and collects its trace.
/// A failed launch (e.g. a deliberate barrier deadlock) still yields the
/// partial trace — the differential holds for those too.
Collected collect(const std::string &Ptx, const std::string &KernelName,
                  sim::Dim3 Grid, sim::Dim3 Block,
                  const std::vector<suite::ParamSpec> &Params) {
  Collected Out;
  std::unique_ptr<ptx::Module> Mod = ptx::parseOrDie(Ptx);
  const ptx::Kernel *K = Mod->findKernel(KernelName);
  if (!K) {
    ADD_FAILURE() << "missing kernel " << KernelName;
    return Out;
  }
  size_t KernelIndex = static_cast<size_t>(K - Mod->Kernels.data());
  instrument::ModuleInstrumentation Instr = instrument::instrumentModule(
      *Mod, instrument::InstrumenterOptions());

  sim::GlobalMemory Memory;
  sim::Machine::layoutModuleGlobals(*Mod, Memory);
  sim::Machine Machine(Memory);
  sim::ParamBuilder Builder(*K);
  size_t Index = 0;
  for (const suite::ParamSpec &Spec : Params) {
    if (Spec.K == suite::ParamSpec::Kind::Value) {
      Builder.set(Index++, Spec.Value);
      continue;
    }
    uint64_t Addr = Memory.allocate(Spec.BufferBytes);
    if (Spec.HasInitWord)
      Memory.write(Addr, 4, Spec.InitWord);
    Builder.set(Index++, Addr);
  }

  sim::LaunchConfig Config;
  Config.Grid = Grid;
  Config.Block = Block;
  sim::CollectingLogger Logger;
  Machine.launch(*Mod, *K, &Instr.Kernels[KernelIndex], Config,
                 Builder.bytes(), &Logger);
  Out.Blocks = std::move(Logger.Blocks);
  Out.Records = std::move(Logger.Records);
  Out.Hier = sim::ThreadHierarchy(Config);
  return Out;
}

/// Replays \p Trace through the lockstep drain at one shard/queue
/// config and returns the verdicts.
std::pair<std::vector<RaceKey>, size_t>
replay(const Collected &Trace, unsigned Shards, unsigned Queues,
       std::string *Detail = nullptr) {
  detector::DetectorOptions Options;
  Options.Hier = Trace.Hier;
  Options.ShadowShards = Shards;
  Options.NumQueues = Queues;
  detector::SharedDetectorState State(Options);
  detector::processCollected(State, Queues, Trace.Blocks, Trace.Records);
  if (Detail)
    *Detail = describeAll(State.Reporter);
  return {keysOf(State.Reporter), State.Reporter.barrierErrors().size()};
}

/// Asserts every shard/queue config reproduces the single-shard
/// single-queue oracle byte for byte.
void expectShardEquivalence(const Collected &Trace,
                            const std::string &Label) {
  std::string OracleDetail;
  std::pair<std::vector<RaceKey>, size_t> Oracle =
      replay(Trace, /*Shards=*/1, /*Queues=*/1, &OracleDetail);
  for (unsigned Shards : {1u, 2u, 7u, 16u}) {
    for (unsigned Queues : {1u, 2u}) {
      std::string Detail;
      std::pair<std::vector<RaceKey>, size_t> Got =
          replay(Trace, Shards, Queues, &Detail);
      EXPECT_EQ(Got.first, Oracle.first)
          << Label << ": " << Shards << " shards, " << Queues
          << " queues\nsharded:\n"
          << Detail << "single-table:\n"
          << OracleDetail;
      EXPECT_EQ(Got.second, Oracle.second)
          << Label << ": " << Shards << " shards, " << Queues
          << " queues (barrier errors)";
    }
  }
}

//===----------------------------------------------------------------------===//
// Lockstep differential: the 66-program suite
//===----------------------------------------------------------------------===//

class ShardSuiteDifferential
    : public ::testing::TestWithParam<suite::SuiteProgram> {};

TEST_P(ShardSuiteDifferential, MatchesSingleShard) {
  const suite::SuiteProgram &Program = GetParam();
  Collected Trace =
      collect(Program.Ptx, Program.KernelName, Program.Grid,
              Program.Block, Program.Params);
  expectShardEquivalence(Trace, Program.Name);
}

INSTANTIATE_TEST_SUITE_P(Suite66, ShardSuiteDifferential,
                         ::testing::ValuesIn(suite::concurrencySuite()));

//===----------------------------------------------------------------------===//
// Lockstep differential: random programs
//===----------------------------------------------------------------------===//

class ShardRandomDifferential : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ShardRandomDifferential, MatchesSingleShard) {
  RandomProgram Program(GetParam());
  Collected Trace = collect(
      Program.Ptx, "rand", sim::Dim3(Program.Blocks),
      sim::Dim3(Program.ThreadsPerBlock), {suite::ParamSpec::buffer(4096)});
  expectShardEquivalence(Trace,
                         "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, ShardRandomDifferential,
                         ::testing::Range<uint64_t>(1, 46));

//===----------------------------------------------------------------------===//
// Threaded engine sessions: the mailbox/marker/completion protocols run
// under real concurrency. Occurrence counts can vary with cross-queue
// interleaving (they do for the unsharded engine too), so this layer
// compares the verdict booleans — which the suite's ground truth pins.
//===----------------------------------------------------------------------===//

class ShardedSession
    : public ::testing::TestWithParam<suite::SuiteProgram> {};

TEST_P(ShardedSession, ThreadedVerdictsMatchSingleShard) {
  const suite::SuiteProgram &Program = GetParam();

  auto verdict = [&](unsigned Shards) {
    SessionOptions Options;
    Options.NumQueues = 2;
    Options.ShadowShards = Shards;
    Options.Profile = false;
    Session S(Options);
    EXPECT_TRUE(S.loadModule(Program.Ptx)) << S.error();
    std::vector<uint64_t> Params;
    for (const suite::ParamSpec &Spec : Program.Params) {
      if (Spec.K == suite::ParamSpec::Kind::Value) {
        Params.push_back(Spec.Value);
        continue;
      }
      uint64_t Addr = S.alloc(Spec.BufferBytes);
      if (Spec.HasInitWord)
        S.writeU32(Addr, Spec.InitWord);
      Params.push_back(Addr);
    }
    S.launchKernel(Program.KernelName, Program.Grid, Program.Block,
                   Params);
    return std::make_pair(S.anyRaces(), !S.barrierErrors().empty());
  };

  std::pair<bool, bool> Single = verdict(1);
  for (unsigned Shards : {2u, 7u})
    EXPECT_EQ(verdict(Shards), Single)
        << Program.Name << " at " << Shards << " shards";
}

INSTANTIATE_TEST_SUITE_P(Suite66, ShardedSession,
                         ::testing::ValuesIn(suite::concurrencySuite()));

} // namespace
