//===- WarpSizeTest.cpp - simulated warp widths (Section 3.1 extension) ----===//
//
// The paper notes that portable CUDA code should not bake in the warp
// size, and that BARRACUDA could "simulate the behavior of smaller/larger
// warps to find additional latent bugs". This implements and tests the
// smaller-warp simulation: warp-synchronous code that is quiet at the
// hardware width of 32 races once lockstep only spans 16 or 8 lanes.
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "suite/Suite.h"

#include <gtest/gtest.h>

using namespace barracuda;

namespace {

/// Warp-synchronous neighbour exchange over 32 threads: thread i writes
/// slot i, then (relying on 32-wide lockstep, no barrier) reads slot
/// (i+1) % 32.
const char *WarpSynchronous = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry exchange(
    .param .u64 out
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<8>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    cvt.u64.u32 %rd2, %r1;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r1;
    add.u32 %r2, %r1, 1;
    and.b32 %r2, %r2, 31;
    cvt.u64.u32 %rd2, %r2;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd4, %rd1, %rd2;
    ld.global.u32 %r3, [%rd4];
    ret;
}
)";

/// Portable variant: reads %WARP_SZ at runtime and exchanges only
/// within the actual warp.
const char *PortableExchange = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry exchange(
    .param .u64 out
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<10>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    mov.u32 %r4, %WARP_SZ;
    cvt.u64.u32 %rd2, %r1;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r1;
    // neighbour within my own (simulated) warp:
    // base = tid - (tid % WARP_SZ); nbr = base + (lane + 1) % WARP_SZ
    rem.u32 %r5, %r1, %r4;
    sub.u32 %r6, %r1, %r5;
    add.u32 %r7, %r5, 1;
    rem.u32 %r7, %r7, %r4;
    add.u32 %r7, %r6, %r7;
    cvt.u64.u32 %rd2, %r7;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd4, %rd1, %rd2;
    ld.global.u32 %r3, [%rd4];
    ret;
}
)";

size_t racesAtWarpSize(const char *Ptx, uint32_t WarpSize) {
  SessionOptions Options;
  Options.WarpSize = WarpSize;
  Session S(Options);
  EXPECT_TRUE(S.loadModule(Ptx)) << S.error();
  uint64_t Out = S.alloc(4 * 32);
  support::Result<sim::LaunchResult> Result =
      S.launchKernel("exchange", sim::Dim3(1), sim::Dim3(32), {Out});
  EXPECT_TRUE(Result.ok()) << Result.status().message();
  return S.races().size();
}

TEST(WarpSize, WarpSynchronousCodeSafeAt32) {
  EXPECT_EQ(racesAtWarpSize(WarpSynchronous, 32), 0u);
}

TEST(WarpSize, LatentRaceAppearsAt16) {
  // Lanes 15<->16 now straddle two simulated warps: no lockstep order.
  EXPECT_GT(racesAtWarpSize(WarpSynchronous, 16), 0u);
}

TEST(WarpSize, LatentRaceAppearsAt8) {
  EXPECT_GT(racesAtWarpSize(WarpSynchronous, 8), 0u);
}

TEST(WarpSize, PortableCodeSafeAtEveryWidth) {
  for (uint32_t WarpSize : {32u, 16u, 8u, 4u})
    EXPECT_EQ(racesAtWarpSize(PortableExchange, WarpSize), 0u)
        << "warp size " << WarpSize;
}

TEST(WarpSize, BarriersStillWorkAtSmallWidths) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry exchange(
    .param .u64 out
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<8>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    cvt.u64.u32 %rd2, %r1;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r1;
    bar.sync 0;
    add.u32 %r2, %r1, 1;
    and.b32 %r2, %r2, 31;
    cvt.u64.u32 %rd2, %r2;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd4, %rd1, %rd2;
    ld.global.u32 %r3, [%rd4];
    ret;
}
)";
  for (uint32_t WarpSize : {32u, 16u, 8u})
    EXPECT_EQ(racesAtWarpSize(Ptx, WarpSize), 0u)
        << "warp size " << WarpSize;
}

/// Suite programs whose ground truth is warp-width independent: their
/// synchronization is barriers/atomics/fences or their accesses are
/// disjoint, so the verdict must hold at narrower widths too.
class WidthRobustSuite : public ::testing::TestWithParam<const char *> {};

TEST_P(WidthRobustSuite, VerdictHoldsAtNarrowWidths) {
  const suite::SuiteProgram *Program =
      suite::findSuiteProgram(GetParam());
  ASSERT_NE(Program, nullptr) << GetParam();
  for (uint32_t WarpSize : {16u, 8u}) {
    SessionOptions Options;
    Options.WarpSize = WarpSize;
    Session S(Options);
    ASSERT_TRUE(S.loadModule(Program->Ptx)) << S.error();
    std::vector<uint64_t> Params;
    for (const auto &Spec : Program->Params) {
      if (Spec.K == suite::ParamSpec::Kind::Value) {
        Params.push_back(Spec.Value);
        continue;
      }
      uint64_t Addr = S.alloc(Spec.BufferBytes);
      if (Spec.HasInitWord)
        S.writeU32(Addr, Spec.InitWord);
      Params.push_back(Addr);
    }
    support::Result<sim::LaunchResult> Result = S.launchKernel(
        Program->KernelName, Program->Grid, Program->Block, Params);
    ASSERT_TRUE(Result.ok()) << Result.status().message();
    bool Problem = S.anyRaces() || !S.barrierErrors().empty();
    EXPECT_EQ(Problem, Program->expectProblem())
        << GetParam() << " at warp size " << WarpSize
        << (S.races().empty() ? std::string()
                              : "\n" + S.races()[0].describe());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, WidthRobustSuite,
    ::testing::Values(
        // race-free, width-robust
        "g_disjoint_slots", "g_neighbor_after_barrier",
        "s_producer_consumer_barrier", "s_atomics_only",
        "s_warp_private_rows", "g_atomic_counter", "b_barrier_loop",
        "m_mixed_spaces", "m_local_memory", "a_ticket_slots",
        "f_mp_global_fences", "l_spinlock_correct",
        "f_threadfence_reduction", "p_grid_stride_disjoint",
        // racy, width-robust
        "g_ww_same_slot", "s_ww_same_slot", "f_mp_no_fences",
        "l_lock_wrong_scope", "p_grid_stride_overlap",
        "b_missing_barrier_stencil"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

TEST(WarpSize, InvalidWidthRejected) {
  SessionOptions Options;
  Options.WarpSize = 64;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(WarpSynchronous));
  uint64_t Out = S.alloc(128);
  EXPECT_FALSE(
      S.launchKernel("exchange", sim::Dim3(1), sim::Dim3(32), {Out}).ok());
}

} // namespace
