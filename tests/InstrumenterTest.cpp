//===- InstrumenterTest.cpp - inference, transform, pruning unit tests -----===//

#include "instrument/Instrumenter.h"
#include "ptx/Parser.h"
#include "ptx/Printer.h"
#include "ptx/Verifier.h"

#include <gtest/gtest.h>

using namespace barracuda;
using namespace barracuda::instrument;

namespace {

/// Parses a body wrapped in a standard kernel and instruments it.
struct Instrumented {
  std::unique_ptr<ptx::Module> Mod;
  KernelInstrumentation KI;

  explicit Instrumented(const std::string &Body,
                        InstrumenterOptions Options = InstrumenterOptions()) {
    std::string Ptx =
        ".version 4.3\n.target sm_35\n.address_size 64\n"
        ".visible .entry k(\n    .param .u64 p0,\n    .param .u64 p1\n)\n"
        "{\n    .reg .u64 %rd<8>;\n    .reg .u32 %r<8>;\n"
        "    .reg .pred %p<4>;\n"
        "    .shared .align 4 .b8 tile[64];\n"
        "    ld.param.u64 %rd1, [p0];\n"
        "    ld.param.u64 %rd2, [p1];\n" +
        Body + "    ret;\n}\n";
    Mod = ptx::parseOrDie(Ptx);
    KI = instrumentKernel(Mod->Kernels[0], Options);
  }

  /// The action on the Nth instruction *after* the two param loads.
  LogActionKind action(unsigned Index) const {
    return KI.Insns[2 + Index].Action;
  }
  trace::SyncScope scope(unsigned Index) const {
    return KI.Insns[2 + Index].Scope;
  }
};

TEST(Inference, PlainAccesses) {
  Instrumented I("    ld.global.u32 %r1, [%rd1];\n"
                 "    st.global.u32 [%rd1], %r1;\n"
                 "    atom.global.add.u32 %r2, [%rd1], 1;\n");
  EXPECT_EQ(I.action(0), LogActionKind::Read);
  EXPECT_EQ(I.action(1), LogActionKind::Write);
  EXPECT_EQ(I.action(2), LogActionKind::Atom);
}

TEST(Inference, StoreReleaseAndLoadAcquire) {
  Instrumented I("    membar.gl;\n"
                 "    st.global.u32 [%rd1], 1;\n"
                 "    ld.global.u32 %r1, [%rd2];\n"
                 "    membar.cta;\n");
  EXPECT_EQ(I.action(0), LogActionKind::FencePart);
  EXPECT_EQ(I.action(1), LogActionKind::Release);
  EXPECT_EQ(I.scope(1), trace::SyncScope::Global);
  EXPECT_EQ(I.action(2), LogActionKind::Acquire);
  EXPECT_EQ(I.scope(2), trace::SyncScope::Block);
  EXPECT_EQ(I.action(3), LogActionKind::FencePart);
}

TEST(Inference, OneFenceServesTwoBundles) {
  // ld; membar; st — the fence closes an acquire and opens a release.
  Instrumented I("    ld.global.u32 %r1, [%rd1];\n"
                 "    membar.gl;\n"
                 "    st.global.u32 [%rd2], %r1;\n");
  EXPECT_EQ(I.action(0), LogActionKind::Acquire);
  EXPECT_EQ(I.action(1), LogActionKind::FencePart);
  EXPECT_EQ(I.action(2), LogActionKind::Release);
}

TEST(Inference, FenceSandwichedAtomicIsAcquireRelease) {
  Instrumented I("    membar.cta;\n"
                 "    atom.global.add.u32 %r1, [%rd1], 1;\n"
                 "    membar.gl;\n");
  EXPECT_EQ(I.action(1), LogActionKind::AcquireRelease);
  // Mixed scopes: the stronger (global) wins.
  EXPECT_EQ(I.scope(1), trace::SyncScope::Global);
}

TEST(Inference, CasSpinLoopAcquire) {
  // The compiled shape of `while(atomicCAS(..)); __threadfence();` —
  // the fence is separated from the cas by the compare and loop branch.
  Instrumented I("SPIN:\n"
                 "    atom.global.cas.b32 %r1, [%rd1], 0, 1;\n"
                 "    setp.ne.u32 %p1, %r1, 0;\n"
                 "    @%p1 bra SPIN;\n"
                 "    membar.gl;\n");
  EXPECT_EQ(I.action(0), LogActionKind::Acquire);
  EXPECT_EQ(I.action(3), LogActionKind::FencePart);
}

TEST(Inference, ExchWithLeadingFenceIsRelease) {
  Instrumented I("    membar.gl;\n"
                 "    atom.global.exch.b32 %r1, [%rd1], 0;\n");
  EXPECT_EQ(I.action(1), LogActionKind::Release);
}

TEST(Inference, StandaloneCasIsJustAtomic) {
  Instrumented I("    atom.global.cas.b32 %r1, [%rd1], 0, 1;\n"
                 "    st.global.u32 [%rd2], %r1;\n");
  EXPECT_EQ(I.action(0), LogActionKind::Atom);
  EXPECT_EQ(I.action(1), LogActionKind::Write);
}

TEST(Inference, LoneFenceHasNoTraceOperation) {
  Instrumented I("    add.u32 %r1, %r1, 1;\n"
                 "    membar.gl;\n"
                 "    add.u32 %r1, %r1, 1;\n");
  EXPECT_EQ(I.action(1), LogActionKind::Fence);
  EXPECT_EQ(I.KI.Stats.InstrumentedOptimized, 0u);
}

TEST(Inference, SysFenceIsGlobalScope) {
  Instrumented I("    membar.sys;\n"
                 "    st.global.u32 [%rd1], 1;\n");
  EXPECT_EQ(I.action(1), LogActionKind::Release);
  EXPECT_EQ(I.scope(1), trace::SyncScope::Global);
}

TEST(Inference, ParamAndLocalAccessesNotInstrumented) {
  Instrumented I("    ld.param.u64 %rd3, [p0];\n"
                 "    st.local.u32 [%rd3], %r1;\n"
                 "    ld.local.u32 %r1, [%rd3];\n");
  EXPECT_EQ(I.action(0), LogActionKind::None);
  EXPECT_EQ(I.action(1), LogActionKind::None);
  EXPECT_EQ(I.action(2), LogActionKind::None);
}

TEST(Inference, GuardedBranchInstrumented) {
  Instrumented I("    setp.eq.u32 %p1, %r1, 0;\n"
                 "    @%p1 bra SKIP;\n"
                 "    add.u32 %r1, %r1, 1;\n"
                 "SKIP:\n");
  EXPECT_EQ(I.action(1), LogActionKind::Branch);
  // Reconvergence at SKIP (the ret).
  EXPECT_EQ(I.KI.Insns[3].ReconvPc, 5u);
}

TEST(Inference, UniformBranchesNotInstrumented) {
  Instrumented I("    bra.uni FWD;\n"
                 "FWD:\n"
                 "    add.u32 %r1, %r1, 1;\n");
  EXPECT_EQ(I.action(0), LogActionKind::None);
}

TEST(Pruning, RepeatedLoadPruned) {
  Instrumented I("    ld.global.u32 %r1, [%rd1];\n"
                 "    ld.global.u32 %r2, [%rd1];\n"
                 "    ld.global.u32 %r3, [%rd1+4];\n");
  EXPECT_EQ(I.action(0), LogActionKind::Read);
  EXPECT_TRUE(I.KI.Insns[3].Pruned);  // same address re-read
  EXPECT_FALSE(I.KI.Insns[4].Pruned); // different offset
  EXPECT_EQ(I.KI.Stats.InstrumentedUnoptimized,
            I.KI.Stats.InstrumentedOptimized + 1);
}

TEST(Pruning, LoadAfterStoreToSameAddressPruned) {
  Instrumented I("    st.global.u32 [%rd1], %r1;\n"
                 "    ld.global.u32 %r2, [%rd1];\n"
                 "    st.global.u32 [%rd1], %r2;\n");
  EXPECT_FALSE(I.KI.Insns[2].Pruned); // the store logs
  EXPECT_TRUE(I.KI.Insns[3].Pruned);  // read covered by the store
  // A write after a logged write to the same address is redundant too.
  EXPECT_TRUE(I.KI.Insns[4].Pruned);
}

TEST(Pruning, BaseRegisterRedefinitionInvalidates) {
  Instrumented I("    ld.global.u32 %r1, [%rd1];\n"
                 "    add.u64 %rd1, %rd1, 0;\n"
                 "    ld.global.u32 %r2, [%rd1];\n");
  EXPECT_FALSE(I.KI.Insns[2].Pruned);
  EXPECT_FALSE(I.KI.Insns[4].Pruned); // %rd1 changed in between
}

TEST(Pruning, SynchronizationClearsWindow) {
  Instrumented I("    ld.global.u32 %r1, [%rd1];\n"
                 "    bar.sync 0;\n"
                 "    ld.global.u32 %r2, [%rd1];\n");
  EXPECT_FALSE(I.KI.Insns[4].Pruned);
}

TEST(Pruning, VolatileNeverPruned) {
  Instrumented I("    ld.volatile.global.u32 %r1, [%rd1];\n"
                 "    ld.volatile.global.u32 %r2, [%rd1];\n");
  EXPECT_FALSE(I.KI.Insns[2].Pruned);
  EXPECT_FALSE(I.KI.Insns[3].Pruned);
}

TEST(Pruning, CanBeDisabled) {
  InstrumenterOptions Options;
  Options.PruneRedundantLogging = false;
  Instrumented I("    ld.global.u32 %r1, [%rd1];\n"
                 "    ld.global.u32 %r2, [%rd1];\n",
                 Options);
  EXPECT_FALSE(I.KI.Insns[3].Pruned);
  EXPECT_EQ(I.KI.Stats.InstrumentedUnoptimized,
            I.KI.Stats.InstrumentedOptimized);
}

TEST(Transform, PredicatedStoreBecomesBranch) {
  std::string Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 p0
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    setp.eq.u32 %p1, %r1, 0;
    @%p1 st.global.u32 [%rd1], %r1;
    ret;
}
)";
  auto Mod = ptx::parseOrDie(Ptx);
  size_t Before = Mod->Kernels[0].Body.size();
  unsigned Transformed =
      instrument::transformPredicatedInstructions(Mod->Kernels[0]);
  EXPECT_EQ(Transformed, 1u);
  EXPECT_EQ(Mod->Kernels[0].Body.size(), Before + 1);
  // The rewritten module is still valid and still prints/parses.
  EXPECT_TRUE(ptx::verifyModule(*Mod).empty());
  const ptx::Instruction &Branch = Mod->Kernels[0].Body[3];
  ASSERT_TRUE(Branch.isBranch());
  EXPECT_TRUE(Branch.GuardNegated); // @!%p1 bra skip
  const ptx::Instruction &Store = Mod->Kernels[0].Body[4];
  EXPECT_TRUE(Store.isStore());
  EXPECT_FALSE(Store.isGuarded());

  std::string Printed = ptx::printModule(*Mod);
  ptx::Parser Reparse(Printed);
  EXPECT_NE(Reparse.parseModule(), nullptr) << Reparse.error() << Printed;
}

TEST(Transform, PredicatedArithmeticKept) {
  std::string Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 p0
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    setp.eq.u32 %p1, %r1, 0;
    @%p1 add.u32 %r2, %r1, 1;
    ret;
}
)";
  auto Mod = ptx::parseOrDie(Ptx);
  EXPECT_EQ(instrument::transformPredicatedInstructions(Mod->Kernels[0]),
            0u);
}

TEST(Transform, BranchTargetsStayCorrect) {
  std::string Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 p0
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    setp.eq.u32 %p1, %r1, 0;
    @%p1 bra END;
    @%p1 st.global.u32 [%rd1], %r1;
    st.global.u32 [%rd1+4], %r1;
END:
    ret;
}
)";
  auto Mod = ptx::parseOrDie(Ptx);
  instrument::transformPredicatedInstructions(Mod->Kernels[0]);
  const ptx::Kernel &K = Mod->Kernels[0];
  // The branch to END must now point at the (shifted) ret.
  const ptx::Instruction &Jump = K.Body[3];
  ASSERT_TRUE(Jump.isBranch());
  EXPECT_EQ(static_cast<size_t>(Jump.Ops[0].Target), K.Body.size() - 1);
  EXPECT_TRUE(K.Body[K.Body.size() - 1].Op == ptx::Opcode::Ret);
}

} // namespace
