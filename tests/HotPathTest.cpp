//===- HotPathTest.cpp - detector hot-path equivalence and counters --------===//
//
// The coalesced hot path (same-epoch fast paths, run coalescing, granule
// locking, broadcast) must be an exact replay of the per-byte rules:
// identical race reports — including dynamic occurrence counts — and
// identical barrier verdicts. These tests drive seeded random record
// streams (coalesced, strided, conflicting and overlapping access mixes,
// all sizes, If/Else/Fi divergence, barriers and sync edges) through the
// production detector with the hot path on and off, and through the
// uncompressed baseline::ReferenceDetector, and require all three to
// agree. Separate tests pin down the counters: coalesced streams must
// light up the fast paths, conflicting ones must leave them untouched.
//
//===----------------------------------------------------------------------===//

#include "baseline/Reference.h"
#include "detector/Detector.h"
#include "detector/Host.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

using namespace barracuda;
using namespace barracuda::detector;
using trace::LogRecord;
using trace::MemSpace;
using trace::RecordOp;
using trace::WarpSize;

namespace {

constexpr uint32_t WarpsPerBlock = 2;
constexpr uint32_t NumWarps = 4; // two blocks

sim::ThreadHierarchy hierarchy() {
  sim::ThreadHierarchy Hier;
  Hier.ThreadsPerBlock = WarpsPerBlock * WarpSize;
  Hier.WarpsPerBlock = WarpsPerBlock;
  return Hier;
}

/// A seeded stream of warp records: memory accesses in coalesced,
/// strided, conflicting and overlapping patterns, with occasional
/// barriers, release/acquire edges and divergence bundles. Partial
/// active masks only ever arise the way the simulator produces them —
/// inside If/Else/Fi reconvergence bundles — because both detectors
/// model divergence through the reconvergence stack; a bare record
/// with a sub-warp mask is not a trace either machine can emit.
struct RandomStream {
  std::vector<LogRecord> Records;
  std::vector<uint32_t> BlockIds;
  uint32_t Ticket = 0;

  explicit RandomStream(uint64_t Seed, unsigned Length) {
    support::Rng Rng(Seed);
    for (unsigned I = 0; I != Length; ++I) {
      if (Rng.chance(6, 100)) {
        barrier(Rng);
        continue;
      }
      if (Rng.chance(8, 100)) {
        sync(Rng, warpOf(Rng), ~0u);
        continue;
      }
      if (Rng.chance(3, 20)) {
        divergence(Rng, warpOf(Rng), ~0u, /*Depth=*/2);
        continue;
      }
      memory(Rng, warpOf(Rng), ~0u);
    }
  }

  void push(const LogRecord &Record) {
    Records.push_back(Record);
    BlockIds.push_back(Record.Warp / WarpsPerBlock);
  }

  uint32_t warpOf(support::Rng &Rng) {
    return static_cast<uint32_t>(Rng.nextBelow(NumWarps));
  }

  /// A random nonzero proper subset of Mask (Mask needs >= 2 set bits).
  uint32_t splitMask(support::Rng &Rng, uint32_t Mask) {
    uint32_t Then;
    do
      Then = Mask & static_cast<uint32_t>(Rng.next());
    while (Then == 0 || Then == Mask);
    return Then;
  }

  /// An If/Else/Fi bundle shaped exactly like the simulator's: the If
  /// record carries the first path's mask with the suspended path's
  /// mask in the else slot, each path runs a few records (possibly
  /// nesting another bundle), and Fi restores the pre-branch mask.
  void divergence(support::Rng &Rng, uint32_t Warp, uint32_t Mask,
                  unsigned Depth) {
    uint32_t Then = splitMask(Rng, Mask);
    uint32_t Else = Mask & ~Then;
    LogRecord If = trace::makeControlRecord(RecordOp::If, Warp, 30, Then);
    If.setElseMask(Else);
    push(If);
    path(Rng, Warp, Then, Depth);
    push(trace::makeControlRecord(RecordOp::Else, Warp, 31, Else));
    path(Rng, Warp, Else, Depth);
    push(trace::makeControlRecord(RecordOp::Fi, Warp, 32, Mask));
  }

  void path(support::Rng &Rng, uint32_t Warp, uint32_t Mask,
            unsigned Depth) {
    unsigned Steps = 1 + static_cast<unsigned>(Rng.nextBelow(3));
    for (unsigned I = 0; I != Steps; ++I) {
      // (Mask & (Mask - 1)) != 0 <=> at least two lanes to split.
      if (Depth > 1 && (Mask & (Mask - 1)) && Rng.chance(1, 4)) {
        divergence(Rng, Warp, Mask, Depth - 1);
        continue;
      }
      if (Rng.chance(1, 8)) {
        sync(Rng, Warp, Mask);
        continue;
      }
      memory(Rng, Warp, Mask);
    }
  }

  void memory(support::Rng &Rng, uint32_t Warp, uint32_t Mask) {
    static const RecordOp Ops[] = {RecordOp::Read, RecordOp::Write,
                                   RecordOp::Write, RecordOp::Atom};
    static const uint16_t Sizes[] = {1, 2, 4, 8};
    RecordOp Op = Ops[Rng.nextBelow(4)];
    uint16_t Size = Sizes[Rng.nextBelow(4)];
    bool Shared = Rng.chance(1, 4);
    MemSpace Space = Shared ? MemSpace::Shared : MemSpace::Global;

    // Overlap-heavy small arena most of the time; occasionally a far
    // page so the page cache sees churn. Odd bases exercise granule and
    // page splits.
    uint64_t Base;
    if (Shared)
      Base = Rng.nextBelow(256);
    else if (Rng.chance(3, 20))
      Base = 0x100000 + Rng.nextBelow(4) * 0x10000 + Rng.nextBelow(512);
    else
      Base = 0x1000 + Rng.nextBelow(512);

    // Lane address pattern: coalesced, conflicting, strided, or sparse.
    uint64_t Stride;
    switch (Rng.nextBelow(4)) {
    case 0:
      Stride = Size; // coalesced
      break;
    case 1:
      Stride = 0; // conflicting
      break;
    case 2:
      Stride = Size * 2; // gappy
      break;
    default:
      Stride = 128; // one lane per granule-neighbourhood
      break;
    }

    LogRecord Record = trace::makeMemRecord(Op, Warp, 1 + Rng.nextBelow(8),
                                            Space, Size, Mask);
    for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
      Record.Addr[Lane] = Base + Lane * Stride;
    push(Record);
  }

  void barrier(support::Rng &Rng) {
    // All resident warps of one block arrive back to back.
    uint32_t Block = static_cast<uint32_t>(Rng.nextBelow(2));
    for (uint32_t W = 0; W != WarpsPerBlock; ++W)
      push(trace::makeControlRecord(RecordOp::Bar, Block * WarpsPerBlock + W,
                                    9, ~0u));
  }

  void sync(support::Rng &Rng, uint32_t Warp, uint32_t Mask) {
    static const RecordOp Ops[] = {RecordOp::Acq, RecordOp::Rel,
                                   RecordOp::AcqRel};
    LogRecord Record = trace::makeMemRecord(Ops[Rng.nextBelow(3)], Warp, 20,
                                            MemSpace::Global, 4, Mask);
    Record.setScope(Rng.chance(1, 2) ? trace::SyncScope::Global
                                    : trace::SyncScope::Block);
    uint64_t Addr = 0x8000 + Rng.nextBelow(4) * 8;
    for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
      Record.Addr[Lane] = Addr;
    Record.SyncSeq = ++Ticket;
    push(Record);
  }
};

using RaceKey =
    std::tuple<uint32_t, AccessKind, AccessKind, MemSpace, RaceScopeKind,
               uint64_t>;

std::vector<RaceKey> keysOf(const RaceReporter &Reporter) {
  std::vector<RaceKey> Keys;
  for (const RaceReport &Race : Reporter.races())
    Keys.emplace_back(Race.Pc, Race.Current, Race.Previous, Race.Space,
                      Race.Scope, Race.Count);
  return Keys;
}

class HotPathDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HotPathDifferential, MatchesReferenceAndLegacy) {
  RandomStream Stream(GetParam(), 300);

  baseline::ReferenceDetector Reference{hierarchy()};
  Reference.processAll(Stream.Records);
  std::vector<RaceKey> Expected = keysOf(Reference.reporter());

  for (bool HotPath : {true, false}) {
    for (unsigned NumQueues : {1u, 2u}) {
      DetectorOptions Options;
      Options.Hier = hierarchy();
      Options.HotPath = HotPath;
      SharedDetectorState State(Options);
      processCollected(State, NumQueues, Stream.BlockIds, Stream.Records);

      EXPECT_EQ(keysOf(State.Reporter), Expected)
          << "seed " << GetParam() << ", hotpath " << HotPath << ", "
          << NumQueues << " queues";
      EXPECT_EQ(State.Reporter.barrierErrors().size(),
                Reference.reporter().barrierErrors().size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, HotPathDifferential,
                         ::testing::Range<uint64_t>(1, 61));

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

LogRecord fullWarpRecord(RecordOp Op, uint64_t Base, uint64_t Stride) {
  LogRecord Record =
      trace::makeMemRecord(Op, 0, 1, MemSpace::Global, 4, ~0u);
  for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
    Record.Addr[Lane] = Base + Lane * Stride;
  return Record;
}

HotPathStats statsFor(const std::vector<LogRecord> &Records,
                      bool HotPath = true) {
  DetectorOptions Options;
  Options.Hier = hierarchy();
  Options.HotPath = HotPath;
  SharedDetectorState State(Options);
  QueueProcessor Processor(State);
  for (const LogRecord &Record : Records)
    Processor.process(Record);
  Processor.finish();
  return State.hotPathStats();
}

TEST(HotPathCounters, CoalescedStreamFiresFastPaths) {
  // A full-warp coalesced 4-byte write: one 128-byte run; 96 of the 128
  // bytes are broadcast copies of their lane's leader byte.
  HotPathStats Stats =
      statsFor({fullWarpRecord(RecordOp::Write, 0x1000, 4),
                fullWarpRecord(RecordOp::Read, 0x1000, 4)});
  EXPECT_GT(Stats.RunsCoalesced, 0u);
  EXPECT_GT(Stats.FastPathHits, 0u);
  EXPECT_GT(Stats.PageCacheHits, 0u);
}

TEST(HotPathCounters, ConflictingStreamStaysCold) {
  // Every lane writes the same address: singleton runs only — no
  // coalescing, no broadcasts, even though the addresses repeat.
  HotPathStats Stats =
      statsFor({fullWarpRecord(RecordOp::Write, 0x1000, 0),
                fullWarpRecord(RecordOp::Write, 0x1000, 0)});
  EXPECT_EQ(Stats.RunsCoalesced, 0u);
  EXPECT_EQ(Stats.FastPathHits, 0u);
}

TEST(HotPathCounters, LegacyModeNeverCounts) {
  HotPathStats Stats = statsFor(
      {fullWarpRecord(RecordOp::Write, 0x1000, 4)}, /*HotPath=*/false);
  EXPECT_EQ(Stats.RunsCoalesced, 0u);
  EXPECT_EQ(Stats.FastPathHits, 0u);
}

//===----------------------------------------------------------------------===//
// Race report addressing (multi-byte accesses)
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Page-boundary straddling runs (the page is the sharding unit, so
// these are exactly the runs the sharded detector must split into
// per-shard pieces)
//===----------------------------------------------------------------------===//

std::vector<uint32_t> blockIdsOf(const std::vector<LogRecord> &Records) {
  std::vector<uint32_t> Ids;
  for (const LogRecord &Record : Records)
    Ids.push_back(Record.Warp / WarpsPerBlock);
  return Ids;
}

std::vector<RaceKey> shardedKeys(const std::vector<LogRecord> &Records,
                                 unsigned Shards) {
  DetectorOptions Options;
  Options.Hier = hierarchy();
  Options.HotPath = true;
  Options.ShadowShards = Shards;
  Options.NumQueues = 1;
  SharedDetectorState State(Options);
  processCollected(State, 1, blockIdsOf(Records), Records);
  return keysOf(State.Reporter);
}

TEST(PageBoundary, StraddlingRunSplitsAcrossShards) {
  // 32 lanes x 4 coalesced bytes starting 64 bytes below a page
  // boundary: the run covers [P-64, P+64), so its first and last byte
  // land on different pages — and, at any shard count > 1 where the
  // pages map differently, in different shards.
  constexpr uint64_t PageSize = GlobalShadow::PageSize;
  uint64_t Base = PageSize - 64;
  LogRecord First =
      trace::makeMemRecord(RecordOp::Write, 0, 1, MemSpace::Global, 4, ~0u);
  LogRecord Second =
      trace::makeMemRecord(RecordOp::Write, 2, 2, MemSpace::Global, 4, ~0u);
  for (unsigned Lane = 0; Lane != WarpSize; ++Lane) {
    First.Addr[Lane] = Base + Lane * 4;
    Second.Addr[Lane] = Base + Lane * 4;
  }
  std::vector<LogRecord> Records{First, Second};

  baseline::ReferenceDetector Reference{hierarchy()};
  Reference.processAll(Records);
  std::vector<RaceKey> Expected = keysOf(Reference.reporter());
  ASSERT_FALSE(Expected.empty());

  for (unsigned Shards : {1u, 2u, 3u, 16u})
    EXPECT_EQ(shardedKeys(Records, Shards), Expected)
        << Shards << " shards";
}

TEST(PageBoundary, SingleAccessStraddlingPageBoundary) {
  // One lane's 8-byte access covers the last four bytes of one page and
  // the first four of the next: the piece split point falls in the
  // middle of a single lane's access, and the conflicting-byte address
  // must survive the split.
  constexpr uint64_t PageSize = GlobalShadow::PageSize;
  LogRecord First =
      trace::makeMemRecord(RecordOp::Write, 0, 1, MemSpace::Global, 8, 1u);
  First.Addr[0] = PageSize - 4;
  LogRecord Second =
      trace::makeMemRecord(RecordOp::Write, 2, 2, MemSpace::Global, 8, 1u);
  Second.Addr[0] = PageSize - 4;
  std::vector<LogRecord> Records{First, Second};

  baseline::ReferenceDetector Reference{hierarchy()};
  Reference.processAll(Records);
  std::vector<RaceKey> Expected = keysOf(Reference.reporter());
  ASSERT_FALSE(Expected.empty());

  for (unsigned Shards : {1u, 2u, 7u}) {
    DetectorOptions Options;
    Options.Hier = hierarchy();
    Options.HotPath = true;
    Options.ShadowShards = Shards;
    Options.NumQueues = 1;
    SharedDetectorState State(Options);
    processCollected(State, 1, blockIdsOf(Records), Records);
    EXPECT_EQ(keysOf(State.Reporter), Expected) << Shards << " shards";
    ASSERT_EQ(State.Reporter.races().size(), 1u);
    EXPECT_EQ(State.Reporter.races()[0].Address, PageSize - 4)
        << Shards << " shards";
  }
}

TEST(PageBoundary, PiecesRouteToTheirOwningShards) {
  // A straddling run at two shards: pages P0 and P1 hash to shards 0
  // and 1, so each shard must apply exactly one piece of the run.
  constexpr uint64_t PageSize = GlobalShadow::PageSize;
  LogRecord Run =
      trace::makeMemRecord(RecordOp::Write, 0, 1, MemSpace::Global, 4, ~0u);
  for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
    Run.Addr[Lane] = PageSize - 64 + Lane * 4;
  std::vector<LogRecord> Records{Run};

  DetectorOptions Options;
  Options.Hier = hierarchy();
  Options.HotPath = true;
  Options.ShadowShards = 2;
  Options.NumQueues = 1;
  SharedDetectorState State(Options);
  processCollected(State, 1, blockIdsOf(Records), Records);

  ASSERT_TRUE(State.shards());
  std::vector<ShardSet::Sample> Samples = State.shards()->sample();
  ASSERT_EQ(Samples.size(), 2u);
  EXPECT_EQ(Samples[0].RunPieces, 1u);
  EXPECT_EQ(Samples[1].RunPieces, 1u);
  EXPECT_EQ(Samples[0].Pages, 1u);
  EXPECT_EQ(Samples[1].Pages, 1u);
}

TEST(HotPathReports, RaceAddressIsTheConflictingByte) {
  // Thread 0 writes [0x1002, 0x1006); a thread in the other block then
  // writes [0x1000, 0x1004). The conflict is at bytes 0x1002-0x1003, and
  // the report must carry that byte address, not the second access's
  // base address 0x1000.
  LogRecord First =
      trace::makeMemRecord(RecordOp::Write, 0, 1, MemSpace::Global, 4, 1u);
  First.Addr[0] = 0x1002;
  LogRecord Second =
      trace::makeMemRecord(RecordOp::Write, 2, 2, MemSpace::Global, 4, 1u);
  Second.Addr[0] = 0x1000;

  for (bool HotPath : {true, false}) {
    DetectorOptions Options;
    Options.Hier = hierarchy();
    Options.HotPath = HotPath;
    SharedDetectorState State(Options);
    QueueProcessor Processor(State);
    Processor.process(First);
    Processor.process(Second);
    Processor.finish();
    ASSERT_EQ(State.Reporter.races().size(), 1u);
    EXPECT_EQ(State.Reporter.races()[0].Address, 0x1002u)
        << "hotpath " << HotPath;
  }
}

} // namespace
