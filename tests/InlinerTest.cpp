//===- InlinerTest.cpp - device-function inlining tests ---------------------===//

#include "barracuda/Session.h"
#include "ptx/Inliner.h"
#include "ptx/Parser.h"
#include "ptx/Printer.h"
#include "ptx/Verifier.h"

#include <gtest/gtest.h>

using namespace barracuda;
using namespace barracuda::ptx;

namespace {

const char *ScaleAddModule = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .func (.reg .u32 %out) scale_add(.reg .u32 %a, .reg .u32 %b)
{
    .reg .u32 %t<2>;
    mul.lo.u32 %t0, %a, 3;
    add.u32 %out, %t0, %b;
    ret;
}

.visible .entry k(
    .param .u64 p0
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    call (%r2), scale_add, (%r1, 7);
    call (%r3), scale_add, (%r2, %r1);
    cvt.u64.u32 %rd2, %r1;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r3;
    ret;
}
)";

TEST(Inliner, ParsesFunctionsAndCalls) {
  Parser P(ScaleAddModule);
  auto M = P.parseModule();
  ASSERT_NE(M, nullptr) << P.error();
  ASSERT_EQ(M->Functions.size(), 1u);
  const Kernel &F = M->Functions[0];
  EXPECT_TRUE(F.IsFunction);
  EXPECT_EQ(F.ArgRegs.size(), 2u);
  EXPECT_EQ(F.RetRegs.size(), 1u);
  EXPECT_TRUE(verifyModule(*M).empty());
  unsigned Calls = 0;
  for (const Instruction &Insn : M->Kernels[0].Body)
    Calls += Insn.Op == Opcode::Call;
  EXPECT_EQ(Calls, 2u);
}

TEST(Inliner, InlinesAndComputesCorrectly) {
  Session S;
  ASSERT_TRUE(S.loadModule(ScaleAddModule)) << S.error();
  // After loading, the kernel must be call-free.
  for (const Instruction &Insn : S.module().Kernels[0].Body)
    EXPECT_NE(Insn.Op, Opcode::Call);
  uint64_t Out = S.alloc(4 * 32);
  ASSERT_TRUE(S.launchKernel("k", sim::Dim3(1), sim::Dim3(32), {Out}).ok());
  for (uint32_t Tid = 0; Tid != 32; ++Tid) {
    uint32_t First = Tid * 3 + 7;        // scale_add(tid, 7)
    uint32_t Second = First * 3 + Tid;   // scale_add(first, tid)
    EXPECT_EQ(S.readU32(Out + 4 * Tid), Second) << "tid " << Tid;
  }
  EXPECT_FALSE(S.anyRaces());
}

TEST(Inliner, FunctionWithControlFlow) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .func (.reg .u32 %out) clamp10(.reg .u32 %a)
{
    .reg .pred %p<2>;
    setp.le.u32 %p1, %a, 10;
    @%p1 bra KEEP;
    mov.u32 %out, 10;
    ret;
KEEP:
    mov.u32 %out, %a;
    ret;
}

.visible .entry k(
    .param .u64 p0
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<4>;
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    call (%r2), clamp10, (%r1);
    cvt.u64.u32 %rd2, %r1;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r2;
    ret;
}
)";
  Session S;
  ASSERT_TRUE(S.loadModule(Ptx)) << S.error();
  uint64_t Out = S.alloc(4 * 32);
  ASSERT_TRUE(S.launchKernel("k", sim::Dim3(1), sim::Dim3(32), {Out}).ok());
  for (uint32_t Tid = 0; Tid != 32; ++Tid)
    EXPECT_EQ(S.readU32(Out + 4 * Tid), std::min(Tid, 10u));
}

TEST(Inliner, NestedCallsInlineTransitively) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .func (.reg .u32 %out) twice(.reg .u32 %a)
{
    add.u32 %out, %a, %a;
    ret;
}
.visible .func (.reg .u32 %out) quad(.reg .u32 %a)
{
    .reg .u32 %t<2>;
    call (%t0), twice, (%a);
    call (%out), twice, (%t0);
    ret;
}
.visible .entry k(
    .param .u64 p0
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<4>;
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, 5;
    call (%r2), quad, (%r1);
    st.global.u32 [%rd1], %r2;
    ret;
}
)";
  Session S;
  ASSERT_TRUE(S.loadModule(Ptx)) << S.error();
  uint64_t Out = S.alloc(64);
  ASSERT_TRUE(S.launchKernel("k", sim::Dim3(1), sim::Dim3(1), {Out}).ok());
  EXPECT_EQ(S.readU32(Out), 20u);
}

TEST(Inliner, RacesInsideDeviceFunctionsDetected) {
  // The memory access lives in the device function; after inlining the
  // detector sees it like any other instruction.
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .func bump(.reg .u64 %addr)
{
    .reg .u32 %v<2>;
    ld.global.u32 %v0, [%addr];
    add.u32 %v0, %v0, 1;
    st.global.u32 [%addr], %v0;
    ret;
}
.visible .entry k(
    .param .u64 p0
)
{
    .reg .u64 %rd<2>;
    ld.param.u64 %rd1, [p0];
    call bump, (%rd1);
    ret;
}
)";
  Session S;
  ASSERT_TRUE(S.loadModule(Ptx)) << S.error();
  uint64_t Out = S.alloc(64);
  ASSERT_TRUE(S.launchKernel("k", sim::Dim3(2), sim::Dim3(32), {Out}).ok());
  EXPECT_TRUE(S.anyRaces());
}

TEST(Inliner, RecursionRejected) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .func (.reg .u32 %out) loop(.reg .u32 %a)
{
    call (%out), loop, (%a);
    ret;
}
.visible .entry k(
    .param .u64 p0
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<3>;
    ld.param.u64 %rd1, [p0];
    call (%r1), loop, (%r1);
    ret;
}
)";
  Session S;
  EXPECT_FALSE(S.loadModule(Ptx));
  EXPECT_NE(S.error().find("budget"), std::string::npos);
}

TEST(Inliner, UnknownCalleeRejected) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 p0
)
{
    .reg .u64 %rd<2>;
    ld.param.u64 %rd1, [p0];
    call nothing_here, (%rd1);
    ret;
}
)";
  Session S;
  EXPECT_FALSE(S.loadModule(Ptx));
  EXPECT_NE(S.error().find("unknown device function"), std::string::npos);
}

TEST(Inliner, ArityMismatchRejected) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .func f(.reg .u32 %a, .reg .u32 %b)
{
    ret;
}
.visible .entry k(
    .param .u64 p0
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<2>;
    ld.param.u64 %rd1, [p0];
    call f, (%r1);
    ret;
}
)";
  Session S;
  EXPECT_FALSE(S.loadModule(Ptx));
  EXPECT_NE(S.error().find("expected"), std::string::npos);
}

TEST(Inliner, ModuleWithFunctionsRoundTrips) {
  Parser P(ScaleAddModule);
  auto M = P.parseModule();
  ASSERT_NE(M, nullptr) << P.error();
  std::string Printed = printModule(*M);
  Parser P2(Printed);
  auto M2 = P2.parseModule();
  ASSERT_NE(M2, nullptr) << P2.error() << "\n" << Printed;
  EXPECT_EQ(M2->Functions.size(), 1u);
  EXPECT_EQ(printModule(*M2), Printed);
}

} // namespace
