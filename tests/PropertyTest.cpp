//===- PropertyTest.cpp - compressed vs reference detector equivalence -----===//
//
// The lossless-compression property (Section 4.3.1): BARRACUDA's
// compressed PTVC detector must report exactly the same races as a
// direct, uncompressed implementation of the Figure 2/3 rules, on the
// same trace. We generate random CUDA programs — divergent branches
// (nested), barriers, atomics, fence bundles, global and shared accesses
// — execute them once, and run both detectors over the identical record
// stream, with both single-queue and multi-queue routing.
//
//===----------------------------------------------------------------------===//

#include "baseline/Reference.h"
#include "detector/Detector.h"
#include "detector/Host.h"
#include "instrument/Instrumenter.h"
#include "ptx/Parser.h"
#include "sim/Machine.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace barracuda;
using support::formatString;

namespace {

/// Generates a random, terminating kernel: straight-line global/shared
/// accesses, nested divergence, barriers, atomics and fence bundles.
class RandomProgram {
public:
  explicit RandomProgram(uint64_t Seed) : Rng(Seed) {
    Blocks = Rng.chance(1, 2) ? 1 : 2;
    ThreadsPerBlock = Rng.chance(1, 2) ? 32 : 64;
    Body = prolog();
    unsigned Statements = 6 + static_cast<unsigned>(Rng.nextBelow(10));
    for (unsigned I = 0; I != Statements; ++I)
      emitStatement(/*Depth=*/0);
    Body += "    ret;\n";
    Ptx = ".version 4.3\n.target sm_35\n.address_size 64\n\n"
          ".visible .entry rand(\n    .param .u64 p0\n)\n{\n"
          "    .reg .u64 %rd<10>;\n    .reg .u32 %r<12>;\n"
          "    .reg .pred %p<6>;\n"
          "    .shared .align 4 .b8 tile[256];\n" +
          Body + "}\n";
  }

  std::string Ptx;
  uint32_t Blocks;
  uint32_t ThreadsPerBlock;

private:
  std::string prolog() {
    return "    ld.param.u64 %rd1, [p0];\n"
           "    mov.u32 %r1, %tid.x;\n"
           "    mov.u32 %r2, %ctaid.x;\n"
           "    mov.u32 %r3, %ntid.x;\n"
           "    mad.lo.u32 %r4, %r2, %r3, %r1;\n"
           "    mov.u64 %rd5, tile;\n";
  }

  /// Emits address computation into %rd4 (global) or %rd6 (shared).
  void emitGlobalAddr() {
    switch (Rng.nextBelow(4)) {
    case 0: // own gid slot
      Body += "    cvt.u64.u32 %rd3, %r4;\n"
              "    shl.b64 %rd3, %rd3, 2;\n"
              "    add.u64 %rd4, %rd1, %rd3;\n";
      break;
    case 1: // gid % 4 (conflicting)
      Body += "    and.b32 %r8, %r4, 3;\n"
              "    cvt.u64.u32 %rd3, %r8;\n"
              "    shl.b64 %rd3, %rd3, 2;\n"
              "    add.u64 %rd4, %rd1, %rd3;\n";
      break;
    default: // a fixed hot slot
      Body += formatString("    add.u64 %%rd4, %%rd1, %u;\n",
                           1024 + 4 * static_cast<unsigned>(
                                          Rng.nextBelow(3)));
      break;
    }
  }

  void emitSharedAddr() {
    switch (Rng.nextBelow(3)) {
    case 0:
      Body += "    cvt.u64.u32 %rd3, %r1;\n"
              "    shl.b64 %rd3, %rd3, 2;\n"
              "    add.u64 %rd6, %rd5, %rd3;\n";
      break;
    case 1:
      Body += "    and.b32 %r8, %r1, 3;\n"
              "    cvt.u64.u32 %rd3, %r8;\n"
              "    shl.b64 %rd3, %rd3, 2;\n"
              "    add.u64 %rd6, %rd5, %rd3;\n";
      break;
    default:
      Body += formatString("    add.u64 %%rd6, %%rd5, %u;\n",
                           128 + 4 * static_cast<unsigned>(
                                         Rng.nextBelow(3)));
      break;
    }
  }

  void emitStatement(unsigned Depth) {
    uint64_t Pick = Rng.nextBelow(Depth == 0 ? 12 : 9);
    switch (Pick) {
    case 0: // global store
      emitGlobalAddr();
      Body += "    st.global.u32 [%rd4], %r4;\n";
      break;
    case 1: // global load
      emitGlobalAddr();
      Body += "    ld.global.u32 %r9, [%rd4];\n";
      break;
    case 2: // shared store
      emitSharedAddr();
      Body += "    st.shared.u32 [%rd6], %r1;\n";
      break;
    case 3: // shared load
      emitSharedAddr();
      Body += "    ld.shared.u32 %r9, [%rd6];\n";
      break;
    case 4: // atomic (global or shared)
      if (Rng.chance(1, 2)) {
        emitGlobalAddr();
        Body += "    atom.global.add.u32 %r9, [%rd4], 1;\n";
      } else {
        emitSharedAddr();
        Body += "    atom.shared.add.u32 %r9, [%rd6], 1;\n";
      }
      break;
    case 5: { // release bundle to a sync slot
      const char *Fence = Rng.chance(1, 2) ? "membar.gl" : "membar.cta";
      Body += formatString("    add.u64 %%rd4, %%rd1, %u;\n",
                           2048 + 4 * static_cast<unsigned>(
                                          Rng.nextBelow(2)));
      Body += formatString("    %s;\n    st.global.u32 [%%rd4], 1;\n",
                           Fence);
      break;
    }
    case 6: { // acquire bundle from a sync slot
      const char *Fence = Rng.chance(1, 2) ? "membar.gl" : "membar.cta";
      Body += formatString("    add.u64 %%rd4, %%rd1, %u;\n",
                           2048 + 4 * static_cast<unsigned>(
                                          Rng.nextBelow(2)));
      Body += formatString("    ld.global.u32 %%r9, [%%rd4];\n    %s;\n",
                           Fence);
      break;
    }
    case 7: // lone fence
      Body += Rng.chance(1, 2) ? "    membar.gl;\n" : "    membar.cta;\n";
      break;
    case 8: { // divergence (possibly nested)
      if (Depth >= 2) {
        Body += "    add.u32 %r9, %r4, 1;\n";
        break;
      }
      unsigned Split = 1 + static_cast<unsigned>(Rng.nextBelow(31));
      unsigned ThenLabel = LabelCounter++;
      unsigned JoinLabel = LabelCounter++;
      Body += formatString("    setp.lt.u32 %%p%u, %%r1, %u;\n",
                           1 + Depth, Split);
      Body += formatString("    @%%p%u bra T%u;\n", 1 + Depth, ThenLabel);
      unsigned ElseCount = 1 + static_cast<unsigned>(Rng.nextBelow(2));
      for (unsigned I = 0; I != ElseCount; ++I)
        emitStatement(Depth + 1);
      Body += formatString("    bra.uni J%u;\nT%u:\n", JoinLabel,
                           ThenLabel);
      unsigned ThenCount = 1 + static_cast<unsigned>(Rng.nextBelow(2));
      for (unsigned I = 0; I != ThenCount; ++I)
        emitStatement(Depth + 1);
      Body += formatString("J%u:\n", JoinLabel);
      break;
    }
    default: // top level only: barrier
      Body += "    bar.sync 0;\n";
      break;
    }
  }

  support::Rng Rng;
  std::string Body;
  unsigned LabelCounter = 0;
};

using RaceKey = std::tuple<uint32_t, detector::AccessKind,
                           detector::AccessKind, trace::MemSpace,
                           detector::RaceScopeKind, uint64_t>;

std::vector<RaceKey> keysOf(const detector::RaceReporter &Reporter) {
  std::vector<RaceKey> Keys;
  for (const detector::RaceReport &Race : Reporter.races())
    Keys.emplace_back(Race.Pc, Race.Current, Race.Previous, Race.Space,
                      Race.Scope, Race.Count);
  return Keys;
}

std::string describeAll(const detector::RaceReporter &Reporter) {
  std::string Out;
  for (const detector::RaceReport &Race : Reporter.races())
    Out += "  " + Race.describe() + "\n";
  return Out.empty() ? "  (none)\n" : Out;
}

class DetectorEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectorEquivalence, CompressedMatchesReference) {
  RandomProgram Program(GetParam());

  std::unique_ptr<ptx::Module> Mod = ptx::parseOrDie(Program.Ptx);
  instrument::InstrumenterOptions InstrOpts;
  instrument::ModuleInstrumentation Instr =
      instrument::instrumentModule(*Mod, InstrOpts);

  sim::GlobalMemory Memory;
  sim::Machine::layoutModuleGlobals(*Mod, Memory);
  sim::Machine Machine(Memory);
  const ptx::Kernel &K = Mod->Kernels[0];
  sim::ParamBuilder Builder(K);
  Builder.set(0, Memory.allocate(4096));
  sim::LaunchConfig Config;
  Config.Grid = sim::Dim3(Program.Blocks);
  Config.Block = sim::Dim3(Program.ThreadsPerBlock);
  sim::CollectingLogger Logger;
  sim::LaunchResult Result = Machine.launch(
      *Mod, K, &Instr.Kernels[0], Config, Builder.bytes(), &Logger);
  ASSERT_TRUE(Result.Ok) << Result.Error << "\n" << Program.Ptx;

  // Reference detector: exact rules, full vector clocks.
  baseline::ReferenceDetector Reference{sim::ThreadHierarchy(Config)};
  Reference.processAll(Logger.Records);

  // Production detector, single-queue and multi-queue routing.
  for (unsigned NumQueues : {1u, 3u}) {
    detector::DetectorOptions Options;
    Options.Hier = sim::ThreadHierarchy(Config);
    detector::SharedDetectorState State(Options);
    detector::processCollected(State, NumQueues, Logger.Blocks,
                               Logger.Records);

    EXPECT_EQ(keysOf(State.Reporter), keysOf(Reference.reporter()))
        << "seed " << GetParam() << ", " << NumQueues << " queues\n"
        << "compressed:\n" << describeAll(State.Reporter)
        << "reference:\n" << describeAll(Reference.reporter())
        << "program:\n" << Program.Ptx;
    EXPECT_EQ(State.Reporter.barrierErrors().size(),
              Reference.reporter().barrierErrors().size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DetectorEquivalence,
                         ::testing::Range<uint64_t>(1, 121));

} // namespace
