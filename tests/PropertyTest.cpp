//===- PropertyTest.cpp - compressed vs reference detector equivalence -----===//
//
// The lossless-compression property (Section 4.3.1): BARRACUDA's
// compressed PTVC detector must report exactly the same races as a
// direct, uncompressed implementation of the Figure 2/3 rules, on the
// same trace. We generate random CUDA programs — divergent branches
// (nested), barriers, atomics, fence bundles, global and shared accesses
// — execute them once, and run both detectors over the identical record
// stream, with both single-queue and multi-queue routing.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"

#include "baseline/Reference.h"
#include "detector/Detector.h"
#include "detector/Host.h"
#include "instrument/Instrumenter.h"
#include "ptx/Parser.h"
#include "sim/Machine.h"
#include "support/Format.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace barracuda;
using barracuda::tests::RandomProgram;

namespace {

using RaceKey = std::tuple<uint32_t, detector::AccessKind,
                           detector::AccessKind, trace::MemSpace,
                           detector::RaceScopeKind, uint64_t>;

std::vector<RaceKey> keysOf(const detector::RaceReporter &Reporter) {
  std::vector<RaceKey> Keys;
  for (const detector::RaceReport &Race : Reporter.races())
    Keys.emplace_back(Race.Pc, Race.Current, Race.Previous, Race.Space,
                      Race.Scope, Race.Count);
  return Keys;
}

std::string describeAll(const detector::RaceReporter &Reporter) {
  std::string Out;
  for (const detector::RaceReport &Race : Reporter.races())
    Out += "  " + Race.describe() + "\n";
  return Out.empty() ? "  (none)\n" : Out;
}

class DetectorEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectorEquivalence, CompressedMatchesReference) {
  RandomProgram Program(GetParam());

  std::unique_ptr<ptx::Module> Mod = ptx::parseOrDie(Program.Ptx);
  instrument::InstrumenterOptions InstrOpts;
  instrument::ModuleInstrumentation Instr =
      instrument::instrumentModule(*Mod, InstrOpts);

  sim::GlobalMemory Memory;
  sim::Machine::layoutModuleGlobals(*Mod, Memory);
  sim::Machine Machine(Memory);
  const ptx::Kernel &K = Mod->Kernels[0];
  sim::ParamBuilder Builder(K);
  Builder.set(0, Memory.allocate(4096));
  sim::LaunchConfig Config;
  Config.Grid = sim::Dim3(Program.Blocks);
  Config.Block = sim::Dim3(Program.ThreadsPerBlock);
  sim::CollectingLogger Logger;
  sim::LaunchResult Result = Machine.launch(
      *Mod, K, &Instr.Kernels[0], Config, Builder.bytes(), &Logger);
  ASSERT_TRUE(Result.Ok) << Result.Error << "\n" << Program.Ptx;

  // Reference detector: exact rules, full vector clocks.
  baseline::ReferenceDetector Reference{sim::ThreadHierarchy(Config)};
  Reference.processAll(Logger.Records);

  // Production detector, single-queue and multi-queue routing.
  for (unsigned NumQueues : {1u, 3u}) {
    detector::DetectorOptions Options;
    Options.Hier = sim::ThreadHierarchy(Config);
    detector::SharedDetectorState State(Options);
    detector::processCollected(State, NumQueues, Logger.Blocks,
                               Logger.Records);

    EXPECT_EQ(keysOf(State.Reporter), keysOf(Reference.reporter()))
        << "seed " << GetParam() << ", " << NumQueues << " queues\n"
        << "compressed:\n" << describeAll(State.Reporter)
        << "reference:\n" << describeAll(Reference.reporter())
        << "program:\n" << Program.Ptx;
    EXPECT_EQ(State.Reporter.barrierErrors().size(),
              Reference.reporter().barrierErrors().size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DetectorEquivalence,
                         ::testing::Range<uint64_t>(1, 121));

} // namespace
