//===- SessionTest.cpp - public API, reports and weak-memory model tests ---===//

#include "barracuda/Session.h"
#include "detector/Json.h"
#include "detector/Report.h"
#include "sim/WeakMemory.h"

#include <gtest/gtest.h>

using namespace barracuda;

namespace {

const char *CopyKernel = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry copy(
    .param .u64 dst,
    .param .u64 src,
    .param .u32 n
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<6>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [dst];
    ld.param.u64 %rd2, [src];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %tid.x;
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mad.lo.u32 %r5, %r3, %r4, %r2;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    cvt.u64.u32 %rd3, %r5;
    shl.b64 %rd3, %rd3, 2;
    add.u64 %rd4, %rd2, %rd3;
    add.u64 %rd5, %rd1, %rd3;
    ld.global.u32 %r2, [%rd4];
    st.global.u32 [%rd5], %r2;
DONE:
    ret;
}
)";

TEST(Session, CopyKernelEndToEnd) {
  Session S;
  ASSERT_TRUE(S.loadModule(CopyKernel)) << S.error();
  std::vector<uint32_t> Input(100);
  for (uint32_t I = 0; I != 100; ++I)
    Input[I] = I * 3 + 1;
  uint64_t Src = S.alloc(400), Dst = S.alloc(400);
  S.copyToDevice(Src, Input.data(), 400);
  support::Result<sim::LaunchResult> Result =
      S.launchKernel("copy", sim::Dim3(4), sim::Dim3(32), {Dst, Src, 100});
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  std::vector<uint32_t> Output(100);
  S.copyFromDevice(Output.data(), Dst, 400);
  EXPECT_EQ(Output, Input);
  EXPECT_FALSE(S.anyRaces());
  EXPECT_GT(S.report().Records.Processed, 0u);
  EXPECT_GT(S.report().Detector.GlobalShadowBytes, 0u);
}

TEST(Session, LaunchErrors) {
  Session S;
  EXPECT_FALSE(S.launchKernel("nope", sim::Dim3(1), sim::Dim3(1)).ok());
  ASSERT_TRUE(S.loadModule(CopyKernel)) << S.error();
  // Unknown kernel.
  EXPECT_FALSE(S.launchKernel("nope", sim::Dim3(1), sim::Dim3(1)).ok());
  // Wrong parameter count.
  EXPECT_FALSE(S.launchKernel("copy", sim::Dim3(1), sim::Dim3(1), {}).ok());
  // Over-large block.
  EXPECT_FALSE(
      S.launchKernel("copy", sim::Dim3(1), sim::Dim3(2048), {1, 2, 3}).ok());
}

TEST(Session, ParseErrorsSurface) {
  Session S;
  EXPECT_FALSE(S.loadModule("this is not ptx"));
  EXPECT_FALSE(S.error().empty());
}

TEST(Session, RacesAccumulateAcrossLaunches) {
  const char *Racy = R"(
.version 4.3
.target sm_35
.visible .entry racy(
    .param .u64 out
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %ctaid.x;
    st.global.u32 [%rd1], %r1;
    ret;
}
)";
  Session S;
  ASSERT_TRUE(S.loadModule(Racy)) << S.error();
  uint64_t Out = S.alloc(64);
  ASSERT_TRUE(S.launchKernel("racy", sim::Dim3(2), sim::Dim3(32), {Out}).ok());
  size_t AfterFirst = S.races().size();
  EXPECT_GE(AfterFirst, 1u);
  ASSERT_TRUE(S.launchKernel("racy", sim::Dim3(2), sim::Dim3(32), {Out}).ok());
  EXPECT_GE(S.races().size(), AfterFirst * 2);
}

TEST(Session, FillAndScalarHelpers) {
  Session S;
  ASSERT_TRUE(S.loadModule(CopyKernel));
  uint64_t Buf = S.alloc(64);
  S.fillDevice(Buf, 64, 0xAB);
  EXPECT_EQ(S.readU32(Buf), 0xABABABABu);
  S.writeU64(Buf + 8, 0x1122334455667788ULL);
  EXPECT_EQ(S.readU64(Buf + 8), 0x1122334455667788ULL);
  S.writeU32(Buf, 7);
  EXPECT_EQ(S.readU32(Buf), 7u);
}

TEST(Report, DescribeAndDedup) {
  detector::RaceReporter Reporter;
  for (int I = 0; I != 5; ++I)
    Reporter.reportRace(12, detector::AccessKind::Write,
                        detector::AccessKind::Read,
                        trace::MemSpace::Shared,
                        detector::RaceScopeKind::IntraBlock, 3, 4, 0x99);
  Reporter.reportRace(12, detector::AccessKind::Write,
                      detector::AccessKind::Read, trace::MemSpace::Global,
                      detector::RaceScopeKind::IntraBlock, 3, 4, 0x99);
  EXPECT_EQ(Reporter.distinctRaces(), 2u);
  EXPECT_EQ(Reporter.dynamicRaceCount(), 6u);
  EXPECT_EQ(Reporter.racesInSpace(trace::MemSpace::Shared), 1u);
  std::string Text = Reporter.races()[0].describe();
  EXPECT_NE(Text.find("intra-block"), std::string::npos);
  EXPECT_NE(Text.find("pc 12"), std::string::npos);
  Reporter.clear();
  EXPECT_FALSE(Reporter.anyRaces());
}

TEST(Session, RaceReportsCarrySourceLines) {
  const char *Racy = R"(
.version 4.3
.target sm_35
.visible .entry racy(
    .param .u64 out
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %ctaid.x;
    st.global.u32 [%rd1], %r1;
    ret;
}
)";
  Session S;
  ASSERT_TRUE(S.loadModule(Racy)) << S.error();
  uint64_t Out = S.alloc(64);
  ASSERT_TRUE(S.launchKernel("racy", sim::Dim3(2), sim::Dim3(32), {Out}).ok());
  ASSERT_TRUE(S.anyRaces());
  // The racing store is on source line 12 of the module text above.
  EXPECT_EQ(S.races()[0].Line, 12u);
  EXPECT_NE(S.races()[0].describe().find("line 12"), std::string::npos);
}

TEST(Session, DynamicPruningCounted) {
  const char *Redundant = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<4>;
    ld.param.u64 %rd1, [out];
    ld.global.u32 %r1, [%rd1];
    ld.global.u32 %r2, [%rd1];
    ld.global.u32 %r3, [%rd1];
    ret;
}
)";
  Session S;
  ASSERT_TRUE(S.loadModule(Redundant)) << S.error();
  uint64_t Out = S.alloc(64);
  support::Result<sim::LaunchResult> Result =
      S.launchKernel("k", sim::Dim3(1), sim::Dim3(32), {Out});
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  // The second and third loads are statically pruned: one warp executes
  // them once each.
  EXPECT_EQ(Result.value().RecordsPruned, 2u);
  instrument::InstrumentationStats Stats = S.instrumentationStats();
  EXPECT_EQ(Stats.InstrumentedUnoptimized - Stats.InstrumentedOptimized,
            2u);
}

TEST(Report, JsonRendering) {
  detector::RaceReporter Reporter;
  Reporter.reportRace(5, detector::AccessKind::Write,
                      detector::AccessKind::Atomic,
                      trace::MemSpace::Global,
                      detector::RaceScopeKind::InterBlock, 11, 22, 0x40);
  Reporter.reportBarrierDivergence(9, 3, 0xFF, 0xFFFF);
  std::string Json = barracuda::detector::reportsToJson(
      Reporter.races(), Reporter.barrierErrors());
  EXPECT_NE(Json.find("\"pc\": 5"), std::string::npos);
  EXPECT_NE(Json.find("\"previous\": \"atomic\""), std::string::npos);
  EXPECT_NE(Json.find("\"scope\": \"inter-block\""), std::string::npos);
  EXPECT_NE(Json.find("\"activeMask\": \"0xff\""), std::string::npos);

  std::string Empty = barracuda::detector::reportsToJson({}, {});
  EXPECT_NE(Empty.find("\"races\": []"), std::string::npos);
}

TEST(WeakMemory, ForwardingAndFences) {
  sim::GlobalMemory Memory;
  sim::StoreBufferModel Model(sim::WeakProfileKind::KeplerK520, Memory, 1);
  Model.setBlockCount(2);
  Model.store(0, 0x100, 4, 42);
  // The writing block forwards from its own buffer...
  EXPECT_EQ(Model.load(0, 0x100, 4), 42u);
  // ...but the other block still sees memory.
  EXPECT_EQ(Model.load(1, 0x100, 4), 0u);
  // A global fence publishes everything.
  Model.fence(0, /*GlobalScope=*/true);
  EXPECT_EQ(Model.load(1, 0x100, 4), 42u);
  EXPECT_EQ(Model.pendingStores(), 0u);
}

TEST(WeakMemory, CtaFenceDoesNotPublishOnKepler) {
  sim::GlobalMemory Memory;
  sim::StoreBufferModel Model(sim::WeakProfileKind::KeplerK520, Memory, 1);
  Model.setBlockCount(2);
  Model.store(0, 0x100, 4, 42);
  Model.fence(0, /*GlobalScope=*/false);
  EXPECT_EQ(Model.load(1, 0x100, 4), 0u);
  Model.drainAll();
  EXPECT_EQ(Model.load(1, 0x100, 4), 42u);
}

TEST(WeakMemory, MaxwellPublishesEagerly) {
  sim::GlobalMemory Memory;
  sim::StoreBufferModel Model(sim::WeakProfileKind::MaxwellTitanX, Memory,
                              1);
  Model.setBlockCount(2);
  Model.store(0, 0x100, 4, 42);
  EXPECT_EQ(Model.load(1, 0x100, 4), 42u);
}

} // namespace
