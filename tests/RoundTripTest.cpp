//===- RoundTripTest.cpp - printer/parser fixpoint over every program ------===//
//
// Every PTX program in the repository (the 66 suite programs and the 26
// generated Table 1 benchmarks) must parse, verify, print, re-parse,
// re-verify, and print to the identical text — the printer is a
// fixpoint and nothing in the corpus leaves the supported subset.
//
//===----------------------------------------------------------------------===//

#include "ptx/Parser.h"
#include "ptx/Printer.h"
#include "ptx/Verifier.h"
#include "suite/Suite.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <ostream>

namespace barracuda {
namespace workloads {
// gtest value printer for the parameterized benchmark specs.
void PrintTo(const BenchmarkSpec &Spec, std::ostream *Out) {
  *Out << Spec.Name;
}
} // namespace workloads
} // namespace barracuda

using namespace barracuda;

namespace {

void expectRoundTrip(const std::string &Name, const std::string &Ptx) {
  ptx::Parser First(Ptx);
  std::unique_ptr<ptx::Module> M1 = First.parseModule();
  ASSERT_NE(M1, nullptr) << Name << ": " << First.error();
  EXPECT_TRUE(ptx::verifyModule(*M1).empty()) << Name;

  std::string Printed = ptx::printModule(*M1);
  ptx::Parser Second(Printed);
  std::unique_ptr<ptx::Module> M2 = Second.parseModule();
  ASSERT_NE(M2, nullptr) << Name << ": " << Second.error() << "\n"
                         << Printed;
  EXPECT_TRUE(ptx::verifyModule(*M2).empty()) << Name;
  EXPECT_EQ(M2->Kernels.size(), M1->Kernels.size());
  for (size_t K = 0; K != M1->Kernels.size(); ++K)
    EXPECT_EQ(M2->Kernels[K].Body.size(), M1->Kernels[K].Body.size())
        << Name;
  EXPECT_EQ(ptx::printModule(*M2), Printed) << Name;
}

class SuiteRoundTrip
    : public ::testing::TestWithParam<suite::SuiteProgram> {};

TEST_P(SuiteRoundTrip, PrintsToFixpoint) {
  expectRoundTrip(GetParam().Name, GetParam().Ptx);
}

std::string suiteName(
    const ::testing::TestParamInfo<suite::SuiteProgram> &Info) {
  return Info.param.Name;
}

INSTANTIATE_TEST_SUITE_P(All, SuiteRoundTrip,
                         ::testing::ValuesIn(suite::concurrencySuite()),
                         suiteName);

class BenchmarkRoundTrip
    : public ::testing::TestWithParam<workloads::BenchmarkSpec> {};

TEST_P(BenchmarkRoundTrip, PrintsToFixpoint) {
  workloads::GeneratedBenchmark Bench =
      workloads::generateBenchmark(GetParam());
  expectRoundTrip(GetParam().Name, Bench.Ptx);
}

std::string benchName(
    const ::testing::TestParamInfo<workloads::BenchmarkSpec> &Info) {
  return Info.param.Name;
}

INSTANTIATE_TEST_SUITE_P(All, BenchmarkRoundTrip,
                         ::testing::ValuesIn(workloads::table1Specs()),
                         benchName);

} // namespace
