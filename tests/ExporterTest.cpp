//===- ExporterTest.cpp - live exporter and continuous profiler ------------===//
//
// The telemetry layer's contract: Prometheus text exposition that obeys
// the name/label grammar and escaping rules, a sampler whose
// start/stop/double-stop are idempotent, an atomic-rename protocol that
// never leaves a torn document behind (every snapshot ends in "# EOF"),
// counters that stay monotone across Registry::reset(), snapshot reuse
// through Registry::snapshotInto(), and a profiler whose per-PC counts
// attribute the machine's dynamic instruction total deterministically.
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "obs/Exporter.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace barracuda;

namespace {

std::string tempDir(const char *Tag) {
  static int Counter = 0;
  return testing::TempDir() + "barracuda-exporter-" + Tag + "-" +
         std::to_string(++Counter);
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Every non-comment line must be `name[{labels}] value` with the name
/// in the Prometheus grammar; the document must end with "# EOF".
void expectValidExposition(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line, Last;
  while (std::getline(In, Line)) {
    Last = Line;
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t NameEnd = Line.find_first_of("{ ");
    ASSERT_NE(NameEnd, std::string::npos) << "bad line: " << Line;
    for (size_t I = 0; I != NameEnd; ++I) {
      char C = Line[I];
      bool Valid = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                   (C >= '0' && C <= '9') || C == '_' || C == ':';
      EXPECT_TRUE(Valid && !(I == 0 && C >= '0' && C <= '9'))
          << "bad metric name in: " << Line;
    }
    if (Line[NameEnd] == '{')
      EXPECT_NE(Line.find('}'), std::string::npos)
          << "unclosed labels: " << Line;
  }
  EXPECT_EQ(Last, "# EOF") << "document is not terminated";
}

TEST(Exporter, SanitizesMetricNames) {
  EXPECT_EQ(obs::Exporter::sanitizeMetricName("engine.records_drained"),
            "barracuda_engine_records_drained");
  EXPECT_EQ(obs::Exporter::sanitizeMetricName("detector.rule.atom.ns"),
            "barracuda_detector_rule_atom_ns");
  EXPECT_EQ(obs::Exporter::sanitizeMetricName("weird name-42%"),
            "barracuda_weird_name_42_");
}

TEST(Exporter, EscapesLabelValues) {
  EXPECT_EQ(obs::Exporter::escapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::Exporter::escapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::Exporter::escapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::Exporter::escapeLabelValue("a\nb"), "a\\nb");
}

TEST(Exporter, RendersRegistryAndLiveSources) {
  obs::Registry Registry;
  Registry.counter("engine.records_drained").add(41);
  Registry.histogram("engine.drain_batch").record(5);

  obs::ExporterOptions Options;
  Options.Dir = tempDir("render");
  obs::Exporter Exporter(Options);
  Exporter.addRegistry(&Registry);
  Exporter.addSource([](std::vector<obs::Exporter::Sample> &Out) {
    Out.push_back({"engine.live.queue_depth", "queue=\"0\"",
                   obs::MetricSample::Kind::Gauge, 7});
    Out.push_back({"engine.watermark_lag", "",
                   obs::MetricSample::Kind::Gauge, 3});
  });

  std::string Text = Exporter.renderExposition();
  expectValidExposition(Text);
  EXPECT_NE(Text.find("# TYPE barracuda_engine_records_drained counter"),
            std::string::npos);
  EXPECT_NE(Text.find("barracuda_engine_records_drained 41"),
            std::string::npos);
  EXPECT_NE(Text.find("barracuda_engine_drain_batch_count 1"),
            std::string::npos);
  EXPECT_NE(
      Text.find("barracuda_engine_live_queue_depth{queue=\"0\"} 7"),
      std::string::npos);
  EXPECT_NE(Text.find("barracuda_engine_watermark_lag 3"),
            std::string::npos);
  // The configured rate counter derives a gauge (zero on first scrape).
  EXPECT_NE(
      Text.find("barracuda_engine_records_drained_per_second"),
      std::string::npos);
}

TEST(Exporter, CountersStayMonotoneAcrossRegistryReset) {
  obs::Registry Registry;
  obs::Counter &C = Registry.counter("engine.records_drained");
  C.add(100);

  obs::ExporterOptions Options;
  Options.Dir = tempDir("monotone");
  obs::Exporter Exporter(Options);
  Exporter.addRegistry(&Registry);

  std::string First = Exporter.renderExposition();
  EXPECT_NE(First.find("barracuda_engine_records_drained 100"),
            std::string::npos);

  Registry.reset(); // per-launch zeroing must not rewind the scrape
  C.add(5);
  std::string Second = Exporter.renderExposition();
  EXPECT_NE(Second.find("barracuda_engine_records_drained 105"),
            std::string::npos);
}

TEST(Exporter, StartStopIdempotentAndLeavesTwoSnapshots) {
  obs::Registry Registry;
  Registry.counter("engine.leases").add(1);

  obs::ExporterOptions Options;
  Options.Dir = tempDir("lifecycle");
  Options.IntervalMs = 10000; // ticks never fire; start/stop write
  obs::Exporter Exporter(Options);
  Exporter.addRegistry(&Registry);

  ASSERT_TRUE(Exporter.start().ok());
  EXPECT_TRUE(Exporter.running());
  ASSERT_TRUE(Exporter.start().ok()) << "second start must be a no-op";
  EXPECT_EQ(Exporter.snapshotsWritten(), 1u);

  Exporter.stop();
  EXPECT_FALSE(Exporter.running());
  EXPECT_EQ(Exporter.snapshotsWritten(), 2u);
  Exporter.stop(); // double stop must be safe
  EXPECT_EQ(Exporter.snapshotsWritten(), 2u);

  // Both the numbered history and the stable latest file are complete
  // documents — the atomic rename never exposes a torn write.
  expectValidExposition(slurp(Options.Dir + "/metrics-000001.prom"));
  expectValidExposition(slurp(Options.Dir + "/metrics-000002.prom"));
  expectValidExposition(slurp(Options.Dir + "/barracuda.prom"));
}

TEST(Exporter, RetentionUnlinksOldSnapshots) {
  obs::Registry Registry;
  obs::ExporterOptions Options;
  Options.Dir = tempDir("retention");
  Options.KeepSnapshots = 2;
  obs::Exporter Exporter(Options);
  Exporter.addRegistry(&Registry);

  ASSERT_TRUE(Exporter.start().ok());
  for (int I = 0; I != 4; ++I)
    ASSERT_TRUE(Exporter.writeOnce().ok());
  Exporter.stop();

  // Only the two newest numbered snapshots survive.
  std::ifstream Gone(Options.Dir + "/metrics-000001.prom");
  EXPECT_FALSE(Gone.good());
  expectValidExposition(slurp(Options.Dir + "/barracuda.prom"));
}

TEST(Metrics, SnapshotIntoReusesBuffer) {
  obs::Registry Registry;
  Registry.counter("a").add(1);
  Registry.gauge("b").set(2);

  obs::Snapshot Buffer;
  Registry.snapshotInto(Buffer);
  ASSERT_EQ(Buffer.samples().size(), 2u);

  // No new instruments: the refill must not reallocate the sample
  // vector (the lock-free fast path reuses cached instrument indices).
  const obs::MetricSample *Data = Buffer.samples().data();
  Registry.counter("a").add(10);
  Registry.snapshotInto(Buffer);
  EXPECT_EQ(Buffer.samples().data(), Data);
  EXPECT_EQ(Buffer.samples()[0].Value, 11);

  // Growing the registry is picked up on the next snapshot.
  Registry.counter("c").add(7);
  Registry.snapshotInto(Buffer);
  EXPECT_EQ(Buffer.samples().size(), 3u);
}

//===----------------------------------------------------------------------===//
// Profiler determinism: per-PC counts must attribute the machine's own
// dynamic instruction totals, run after run.
//===----------------------------------------------------------------------===//

const char *ProfiledKernel = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry profiled(
    .param .u64 buf,
    .param .u32 n
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<7>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [buf];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %tid.x;
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mad.lo.u32 %r5, %r3, %r4, %r2;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    cvt.u64.u32 %rd2, %r5;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r5;
DONE:
    ret;
}
)";

TEST(Profiler, AttributesDynamicInstructionsExactly) {
  SessionOptions Options;
  Options.CollectStats = true;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(ProfiledKernel)) << S.error();
  uint64_t Buf = S.alloc(4096);
  support::Result<sim::LaunchResult> Result = S.launchKernel(
      "profiled", sim::Dim3(4), sim::Dim3(64), {Buf, 200});
  ASSERT_TRUE(Result.ok()) << Result.status().message();

  RunReport Report = S.report();
  ASSERT_TRUE(Report.Profile.Enabled);
  ASSERT_EQ(Report.Profile.Kernels.size(), 1u);
  const obs::KernelProfile &Profile = Report.Profile.Kernels.front();
  EXPECT_EQ(Profile.Kernel, "profiled");

  // Every dynamic warp instruction the machine counted carries a pc, so
  // attribution is exact (and trivially >= the 95% acceptance bar).
  EXPECT_EQ(Profile.TotalDynamic, Result.value().WarpInstructions);
  EXPECT_EQ(Profile.totalAttributed(), Result.value().WarpInstructions);
  EXPECT_DOUBLE_EQ(Report.Profile.attributedFraction(), 1.0);

  // The guarded store ran with live lanes -> memory ops recorded; the
  // @%p1 branch split warps beyond the round block count -> divergence.
  uint64_t MemOps = 0, Divergences = 0;
  for (uint64_t Count : Profile.MemoryOps)
    MemOps += Count;
  for (uint64_t Count : Profile.Divergences)
    Divergences += Count;
  EXPECT_GT(MemOps, 0u);
  EXPECT_GT(Divergences, 0u);

  // Determinism: an identical launch reproduces identical counters
  // (the report resets the profiler per launch).
  support::Result<sim::LaunchResult> Again = S.launchKernel(
      "profiled", sim::Dim3(4), sim::Dim3(64), {Buf, 200});
  ASSERT_TRUE(Again.ok()) << Again.status().message();
  RunReport Second = S.report();
  ASSERT_EQ(Second.Profile.Kernels.size(), 1u);
  EXPECT_EQ(Second.Profile.Kernels.front().Executed, Profile.Executed);
  EXPECT_EQ(Second.Profile.Kernels.front().MemoryOps, Profile.MemoryOps);
}

TEST(Profiler, FoldedStacksCoverEveryExecutedPc) {
  SessionOptions Options;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(ProfiledKernel)) << S.error();
  uint64_t Buf = S.alloc(4096);
  ASSERT_TRUE(S.launchKernel("profiled", sim::Dim3(2), sim::Dim3(32),
                             {Buf, 64})
                  .ok());

  RunReport Report = S.report();
  std::string Folded = Report.foldedStacks();
  ASSERT_FALSE(Folded.empty());

  // One "kernel;frame count" line per executed pc, counts summing to
  // the attributed total.
  uint64_t Sum = 0;
  size_t LineCount = 0;
  std::istringstream In(Folded);
  std::string Line;
  while (std::getline(In, Line)) {
    ASSERT_EQ(Line.rfind("profiled;pc_", 0), 0u) << Line;
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos);
    Sum += std::strtoull(Line.c_str() + Space + 1, nullptr, 10);
    ++LineCount;
  }
  const obs::KernelProfile &Profile = Report.Profile.Kernels.front();
  size_t ExecutedPcs = 0;
  for (uint64_t Count : Profile.Executed)
    ExecutedPcs += Count != 0;
  EXPECT_EQ(LineCount, ExecutedPcs);
  EXPECT_EQ(Sum, Profile.totalAttributed());
}

TEST(Profiler, FoldedStacksIdenticalUnderLowering) {
  // The micro-op path keeps uop indices == original PTX PCs, so hot-PC
  // attribution — and therefore the folded flamegraph output — must be
  // byte-identical with the legacy interpreter, at full attribution.
  auto RunFolded = [](bool SimLowered, bool &WasLowered,
                      double &Fraction) {
    SessionOptions Options;
    Options.SimLowered = SimLowered;
    Session S(Options);
    EXPECT_TRUE(S.loadModule(ProfiledKernel)) << S.error();
    uint64_t Buf = S.alloc(4096);
    EXPECT_TRUE(S.launchKernel("profiled", sim::Dim3(4), sim::Dim3(64),
                               {Buf, 200})
                    .ok());
    RunReport Report = S.report();
    WasLowered = Report.Launch.SimLowered;
    Fraction = Report.Profile.attributedFraction();
    return Report.foldedStacks();
  };
  bool LoweredRan = false, LegacyRan = true;
  double LoweredFraction = 0.0, LegacyFraction = 0.0;
  std::string Lowered = RunFolded(true, LoweredRan, LoweredFraction);
  std::string Legacy = RunFolded(false, LegacyRan, LegacyFraction);
  EXPECT_TRUE(LoweredRan) << "kernel did not take the micro-op path";
  EXPECT_FALSE(LegacyRan);
  EXPECT_EQ(Lowered, Legacy);
  EXPECT_GE(LoweredFraction, 0.95);
  EXPECT_DOUBLE_EQ(LoweredFraction, LegacyFraction);
}

TEST(Profiler, DetachedSessionsCarryNoProfile) {
  SessionOptions Options;
  Options.Profile = false;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(ProfiledKernel)) << S.error();
  uint64_t Buf = S.alloc(4096);
  ASSERT_TRUE(S.launchKernel("profiled", sim::Dim3(2), sim::Dim3(32),
                             {Buf, 64})
                  .ok());
  RunReport Report = S.report();
  EXPECT_FALSE(Report.Profile.Enabled);
  EXPECT_TRUE(Report.Profile.Kernels.empty());
  EXPECT_TRUE(Report.foldedStacks().empty());
}

TEST(Profiler, RuleLatencySectionNamesKinds) {
  SessionOptions Options;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(ProfiledKernel)) << S.error();
  uint64_t Buf = S.alloc(4096);
  ASSERT_TRUE(S.launchKernel("profiled", sim::Dim3(4), sim::Dim3(64),
                             {Buf, 256})
                  .ok());
  RunReport Report = S.report();
  ASSERT_TRUE(Report.Profile.Enabled);
  ASSERT_FALSE(Report.Profile.Rules.empty());
  bool SawWrite = false;
  for (const auto &Rule : Report.Profile.Rules) {
    EXPECT_GT(Rule.Records, 0u);
    SawWrite |= Rule.Kind == "write";
  }
  EXPECT_TRUE(SawWrite);
}

TEST(Session, ExporterWritesLiveSnapshots) {
  SessionOptions Options;
  Options.MetricsOutDir = tempDir("session");
  Options.MetricsIntervalMs = 5;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(ProfiledKernel)) << S.error();
  uint64_t Buf = S.alloc(4096);
  for (int I = 0; I != 5; ++I)
    ASSERT_TRUE(S.launchKernel("profiled", sim::Dim3(4), sim::Dim3(64),
                               {Buf, 200})
                    .ok());
  obs::Exporter *Exporter = S.exporter();
  ASSERT_NE(Exporter, nullptr);
  EXPECT_TRUE(Exporter->running());
  Exporter->stop();
  EXPECT_GE(Exporter->snapshotsWritten(), 2u);

  std::string Text = slurp(Options.MetricsOutDir + "/barracuda.prom");
  expectValidExposition(Text);
  EXPECT_NE(Text.find("barracuda_engine_live_queue_depth{queue=\"0\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("barracuda_engine_watermark_lag"),
            std::string::npos);
  EXPECT_NE(Text.find("barracuda_engine_leases_in_flight"),
            std::string::npos);
  EXPECT_NE(Text.find("barracuda_profile_hottest_pc_executed"),
            std::string::npos);
}

} // namespace
