//===- QueueTest.cpp - lock-free queue tests --------------------------------===//

#include "trace/Queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace barracuda;
using namespace barracuda::trace;

namespace {

LogRecord makeRecord(uint32_t Warp, uint64_t Payload) {
  LogRecord Record;
  Record.Warp = Warp;
  Record.setOp(RecordOp::Write);
  Record.ActiveMask = 1;
  Record.Addr[0] = Payload;
  return Record;
}

TEST(Queue, RecordSize) {
  // The paper's record is 272 bytes; ours adds an 8-byte ordering ticket.
  EXPECT_EQ(sizeof(LogRecord), 280u);
}

TEST(Queue, PushPopFifo) {
  EventQueue Queue(64);
  for (uint64_t I = 0; I != 10; ++I)
    Queue.push(makeRecord(0, I));
  EXPECT_EQ(Queue.pendingApprox(), 10u);
  LogRecord Out;
  for (uint64_t I = 0; I != 10; ++I) {
    ASSERT_TRUE(Queue.pop(Out));
    EXPECT_EQ(Out.Addr[0], I);
  }
  EXPECT_FALSE(Queue.pop(Out));
}

TEST(Queue, DrainBatches) {
  EventQueue Queue(64);
  for (uint64_t I = 0; I != 20; ++I)
    Queue.push(makeRecord(0, I));
  LogRecord Batch[8];
  uint64_t Next = 0;
  for (;;) {
    size_t Count = Queue.drain(Batch, 8);
    if (!Count)
      break;
    for (size_t I = 0; I != Count; ++I)
      EXPECT_EQ(Batch[I].Addr[0], Next++);
  }
  EXPECT_EQ(Next, 20u);
}

TEST(Queue, WrapsAroundCapacity) {
  EventQueue Queue(8);
  LogRecord Out;
  for (uint64_t Round = 0; Round != 5; ++Round) {
    for (uint64_t I = 0; I != 8; ++I)
      Queue.push(makeRecord(0, Round * 8 + I));
    for (uint64_t I = 0; I != 8; ++I) {
      ASSERT_TRUE(Queue.pop(Out));
      EXPECT_EQ(Out.Addr[0], Round * 8 + I);
    }
  }
}

TEST(Queue, CloseAndExhaust) {
  EventQueue Queue(8);
  Queue.push(makeRecord(0, 1));
  EXPECT_FALSE(Queue.exhausted());
  Queue.close();
  EXPECT_TRUE(Queue.closed());
  EXPECT_FALSE(Queue.exhausted());
  LogRecord Out;
  ASSERT_TRUE(Queue.pop(Out));
  EXPECT_TRUE(Queue.exhausted());
}

TEST(Queue, ProducerBlocksUntilConsumed) {
  // A producer filling a small ring makes progress only as the consumer
  // drains; all records must arrive intact and in order.
  EventQueue Queue(4);
  constexpr uint64_t Total = 1000;
  std::thread Producer([&] {
    for (uint64_t I = 0; I != Total; ++I)
      Queue.push(makeRecord(0, I));
    Queue.close();
  });
  LogRecord Out;
  uint64_t Next = 0;
  while (!Queue.exhausted()) {
    if (Queue.pop(Out)) {
      EXPECT_EQ(Out.Addr[0], Next++);
    } else {
      std::this_thread::yield();
    }
  }
  Producer.join();
  EXPECT_EQ(Next, Total);
}

TEST(Queue, MultipleProducersCommitInOrder) {
  EventQueue Queue(1 << 10);
  constexpr unsigned Producers = 4;
  constexpr uint64_t PerProducer = 2000;
  std::vector<std::thread> Threads;
  for (unsigned P = 0; P != Producers; ++P) {
    Threads.emplace_back([&Queue, P] {
      for (uint64_t I = 0; I != PerProducer; ++I) {
        uint64_t Index = Queue.reserve();
        Queue.slot(Index) = makeRecord(P, I);
        Queue.commit(Index);
      }
    });
  }

  std::vector<uint64_t> LastSeen(Producers, 0);
  std::vector<uint64_t> Counts(Producers, 0);
  uint64_t Seen = 0;
  LogRecord Out;
  while (Seen != Producers * PerProducer) {
    if (!Queue.pop(Out)) {
      std::this_thread::yield();
      continue;
    }
    ++Seen;
    ASSERT_LT(Out.Warp, Producers);
    // Per-producer payloads arrive in that producer's order.
    if (Counts[Out.Warp]) {
      EXPECT_LT(LastSeen[Out.Warp], Out.Addr[0]);
    }
    LastSeen[Out.Warp] = Out.Addr[0];
    ++Counts[Out.Warp];
  }
  for (unsigned P = 0; P != Producers; ++P)
    EXPECT_EQ(Counts[P], PerProducer);
  for (std::thread &Thread : Threads)
    Thread.join();
}

//===--- abandonment (closeWithError) -----------------------------------===//

TEST(Queue, AbandonedQueueRejectsProducers) {
  EventQueue Queue(8);
  Queue.closeWithError(support::Status(support::ErrorCode::QueueAbandoned,
                                       "consumer died"));
  EXPECT_TRUE(Queue.abandoned());
  EXPECT_EQ(Queue.reserve(), EventQueue::InvalidIndex);
  EXPECT_FALSE(Queue.push(makeRecord(0, 1)));
  EXPECT_EQ(Queue.rejected(), 2u);
  EXPECT_EQ(Queue.status().code(), support::ErrorCode::QueueAbandoned);
}

TEST(Queue, CloseWithErrorUnblocksFullRingProducer) {
  // Regression: a producer spinning on a full ring whose consumer died
  // must get a structured error back, not livelock forever.
  EventQueue Queue(4);
  for (int I = 0; I != 4; ++I)
    ASSERT_TRUE(Queue.push(makeRecord(0, I)));

  std::atomic<bool> Returned{false};
  std::thread Producer([&] {
    // Ring is full and nobody will ever pop: only abandonment can
    // release this reserve().
    uint64_t Index = Queue.reserve();
    EXPECT_EQ(Index, EventQueue::InvalidIndex);
    Returned.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Returned.load());
  Queue.closeWithError(support::Status(support::ErrorCode::QueueAbandoned,
                                       "injected consumer death"));
  Producer.join();
  EXPECT_TRUE(Returned.load());
  EXPECT_TRUE(Queue.abandoned());
}

TEST(Queue, CloseWithErrorKeepsFirstReason) {
  EventQueue Queue(8);
  Queue.closeWithError(
      support::Status(support::ErrorCode::WorkerFailed, "first"));
  Queue.closeWithError(
      support::Status(support::ErrorCode::QueueAbandoned, "second"));
  EXPECT_EQ(Queue.status().code(), support::ErrorCode::WorkerFailed);
  EXPECT_EQ(Queue.status().message(), "first");
}

TEST(Queue, AbandonedQueueStillDrains) {
  // Records committed before the death stay readable (drain-and-drop).
  EventQueue Queue(8);
  for (int I = 0; I != 3; ++I)
    ASSERT_TRUE(Queue.push(makeRecord(0, I)));
  Queue.closeWithError(support::Status(support::ErrorCode::QueueAbandoned,
                                       "late death"));
  LogRecord Out;
  for (uint64_t I = 0; I != 3; ++I) {
    ASSERT_TRUE(Queue.pop(Out));
    EXPECT_EQ(Out.Addr[0], I);
  }
  EXPECT_FALSE(Queue.pop(Out));
  EXPECT_TRUE(Queue.exhausted());
}

TEST(QueueSet, BlockRouting) {
  QueueSet Queues(3, 16);
  EXPECT_EQ(Queues.size(), 3u);
  EXPECT_EQ(Queues.queueIndexForBlock(0), 0u);
  EXPECT_EQ(Queues.queueIndexForBlock(4), 1u);
  EXPECT_EQ(&Queues.queueForBlock(2), &Queues.queueForBlock(5));
}

} // namespace
