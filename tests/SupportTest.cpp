//===- SupportTest.cpp - support utilities and verifier diagnostics --------===//

#include "ptx/Parser.h"
#include "ptx/Verifier.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/TableWriter.h"

#include <gtest/gtest.h>

using namespace barracuda;

namespace {

TEST(Format, PrintfSemantics) {
  EXPECT_EQ(support::formatString("%d + %s", 2, "two"), "2 + two");
  EXPECT_EQ(support::formatString("%05u", 42u), "00042");
  EXPECT_EQ(support::formatString("empty"), "empty");
  // Long strings exceed any static buffer.
  std::string Long(5000, 'x');
  EXPECT_EQ(support::formatString("%s!", Long.c_str()).size(), 5001u);
}

TEST(Format, Bytes) {
  EXPECT_EQ(support::formatBytes(0), "0 B");
  EXPECT_EQ(support::formatBytes(272), "272 B");
  EXPECT_EQ(support::formatBytes(1536), "1.5 KB");
  EXPECT_EQ(support::formatBytes(3ULL << 30), "3.0 GB");
  EXPECT_EQ(support::formatBytes(4ULL << 40), "4.0 TB");
}

TEST(Format, Commas) {
  EXPECT_EQ(support::formatWithCommas(0), "0");
  EXPECT_EQ(support::formatWithCommas(999), "999");
  EXPECT_EQ(support::formatWithCommas(1000), "1,000");
  EXPECT_EQ(support::formatWithCommas(1048576), "1,048,576");
}

TEST(Rng, DeterministicAndBounded) {
  support::Rng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(A.nextBelow(7), 7u);
    double D = A.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  support::Rng Rng(7);
  unsigned Hits = 0;
  for (int I = 0; I != 10000; ++I)
    Hits += Rng.chance(1, 4);
  EXPECT_GT(Hits, 2200u);
  EXPECT_LT(Hits, 2800u);
}

TEST(TableWriter, AlignsColumns) {
  // Mostly a does-not-crash test; the alignment logic is simple.
  support::TableWriter Table(stdout);
  Table.addHeader({"a", "long-header", "n"});
  Table.setRightAligned(2);
  Table.addRow({"row", "x", "1234"});
  Table.addRow({"longer-row", "y"});
  Table.print();
  SUCCEED();
}

//===--- verifier diagnostics -------------------------------------------===//

std::vector<std::string> diagnose(const std::string &Body) {
  std::string Ptx =
      ".version 4.3\n.target sm_35\n"
      ".visible .entry k(\n    .param .u64 p0\n)\n{\n"
      "    .reg .u64 %rd<4>;\n    .reg .u32 %r<4>;\n"
      "    .reg .pred %p<2>;\n" +
      Body + "    ret;\n}\n";
  ptx::Parser P(Ptx);
  auto M = P.parseModule();
  if (!M)
    return {"parse error: " + P.error()};
  return ptx::verifyModule(*M);
}

TEST(Verifier, AcceptsWellFormed) {
  EXPECT_TRUE(diagnose("    ld.param.u64 %rd1, [p0];\n"
                       "    st.global.u32 [%rd1], 1;\n")
                  .empty());
}

TEST(Verifier, RejectsNonPredicateSetpDest) {
  auto Diags = diagnose("    setp.eq.u32 %r1, %r2, 0;\n");
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].find("predicate"), std::string::npos);
}

TEST(Verifier, RejectsWrongOperandCounts) {
  EXPECT_FALSE(diagnose("    add.u32 %r1, %r2;\n").empty());
  EXPECT_FALSE(diagnose("    mov.u32 %r1, %r2, %r3;\n").empty());
}

TEST(Verifier, RejectsUntypedMemoryOps) {
  // ld without a type suffix parses but cannot verify.
  EXPECT_FALSE(diagnose("    ld.param.u64 %rd1, [p0];\n"
                        "    ld.global %r1, [%rd1];\n")
                   .empty());
}

TEST(Verifier, RejectsAtomWithoutOperation) {
  ptx::Parser P(".version 4.3\n.target sm_35\n"
                ".visible .entry k(\n    .param .u64 p0\n)\n{\n"
                "    .reg .u64 %rd<2>;\n    .reg .u32 %r<3>;\n"
                "    ld.param.u64 %rd1, [p0];\n"
                "    atom.global.b32 %r1, [%rd1], %r2;\n"
                "    ret;\n}\n");
  auto M = P.parseModule();
  ASSERT_NE(M, nullptr) << P.error();
  EXPECT_FALSE(ptx::verifyModule(*M).empty());
}

TEST(JsonParse, Scalars) {
  auto R = support::json::parse("  42  ");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.value().isNumber());
  EXPECT_TRUE(R.value().isU64());
  EXPECT_EQ(R.value().asU64(), 42u);

  EXPECT_TRUE(support::json::parse("true").value().asBool());
  EXPECT_FALSE(support::json::parse("false").value().asBool());
  EXPECT_TRUE(support::json::parse("null").value().isNull());
  EXPECT_EQ(support::json::parse("\"hi\"").value().asString(), "hi");

  auto Neg = support::json::parse("-3.5");
  ASSERT_TRUE(Neg.ok());
  EXPECT_FALSE(Neg.value().isU64());
  EXPECT_DOUBLE_EQ(Neg.value().asDouble(), -3.5);

  auto Exp = support::json::parse("1e3");
  ASSERT_TRUE(Exp.ok());
  EXPECT_DOUBLE_EQ(Exp.value().asDouble(), 1000.0);
}

TEST(JsonParse, U64AddressesAreExact) {
  // Device addresses exceed 2^53; the double path would round them.
  auto R = support::json::parse("18446744073709551615");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.value().isU64());
  EXPECT_EQ(R.value().asU64(), UINT64_MAX);
}

TEST(JsonParse, ObjectsAndArrays) {
  auto R = support::json::parse(
      R"({"op": "launch", "grid": [4, 1, 1], "async": true, "addr": 140737488355328})");
  ASSERT_TRUE(R.ok()) << R.status().describe();
  const auto &V = R.value();
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.getString("op"), "launch");
  EXPECT_TRUE(V.getBool("async"));
  EXPECT_EQ(V.getU64("addr"), 140737488355328ull);
  EXPECT_EQ(V.getU64("missing", 7), 7u);
  EXPECT_EQ(V.get("nothere"), nullptr);
  const support::json::Value *Grid = V.get("grid");
  ASSERT_TRUE(Grid && Grid->isArray());
  ASSERT_EQ(Grid->items().size(), 3u);
  EXPECT_EQ(Grid->items()[0].asU64(), 4u);
}

TEST(JsonParse, StringEscapes) {
  auto R = support::json::parse(R"("a\"b\\c\ndAé")");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.value().asString(), "a\"b\\c\ndA\xc3\xa9");
}

TEST(JsonParse, WriterRoundTrip) {
  support::json::Writer W;
  W.beginObject();
  W.key("name").value("k\"ern\nel");
  W.key("count").value(uint64_t(1) << 60);
  W.key("nested").beginArray().value(1).value(true).endArray();
  W.endObject();
  auto R = support::json::parse(W.take());
  ASSERT_TRUE(R.ok()) << R.status().describe();
  EXPECT_EQ(R.value().getString("name"), "k\"ern\nel");
  EXPECT_EQ(R.value().getU64("count"), uint64_t(1) << 60);
}

TEST(JsonParse, TypedErrorsWithOffsets) {
  auto expectError = [](const std::string &Text) {
    auto R = support::json::parse(Text);
    ASSERT_FALSE(R.ok()) << Text;
    EXPECT_EQ(R.status().code(), support::ErrorCode::ProtocolError);
    EXPECT_NE(R.status().message().find("offset"), std::string::npos);
  };
  expectError("");
  expectError("{");
  expectError("{\"a\" 1}");
  expectError("{\"a\": 1,}");
  expectError("[1 2]");
  expectError("\"unterminated");
  expectError("tru");
  expectError("01x");
  expectError("{} trailing");
  expectError("\"bad\\qescape\"");
  expectError("12.");
  expectError("1e");
}

TEST(JsonParse, DepthLimit) {
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  auto R = support::json::parse(Deep, /*MaxDepth=*/64);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), support::ErrorCode::ProtocolError);
  // Within the limit the same shape parses.
  EXPECT_TRUE(support::json::parse(Deep, 128).ok());
}

TEST(Verifier, RejectsImmediateStoreTarget) {
  auto Diags = diagnose("    st.global.u32 %r1, 5;\n");
  EXPECT_FALSE(Diags.empty());
}

} // namespace
