//===- SupportTest.cpp - support utilities and verifier diagnostics --------===//

#include "ptx/Parser.h"
#include "ptx/Verifier.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/TableWriter.h"

#include <gtest/gtest.h>

using namespace barracuda;

namespace {

TEST(Format, PrintfSemantics) {
  EXPECT_EQ(support::formatString("%d + %s", 2, "two"), "2 + two");
  EXPECT_EQ(support::formatString("%05u", 42u), "00042");
  EXPECT_EQ(support::formatString("empty"), "empty");
  // Long strings exceed any static buffer.
  std::string Long(5000, 'x');
  EXPECT_EQ(support::formatString("%s!", Long.c_str()).size(), 5001u);
}

TEST(Format, Bytes) {
  EXPECT_EQ(support::formatBytes(0), "0 B");
  EXPECT_EQ(support::formatBytes(272), "272 B");
  EXPECT_EQ(support::formatBytes(1536), "1.5 KB");
  EXPECT_EQ(support::formatBytes(3ULL << 30), "3.0 GB");
  EXPECT_EQ(support::formatBytes(4ULL << 40), "4.0 TB");
}

TEST(Format, Commas) {
  EXPECT_EQ(support::formatWithCommas(0), "0");
  EXPECT_EQ(support::formatWithCommas(999), "999");
  EXPECT_EQ(support::formatWithCommas(1000), "1,000");
  EXPECT_EQ(support::formatWithCommas(1048576), "1,048,576");
}

TEST(Rng, DeterministicAndBounded) {
  support::Rng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(A.nextBelow(7), 7u);
    double D = A.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  support::Rng Rng(7);
  unsigned Hits = 0;
  for (int I = 0; I != 10000; ++I)
    Hits += Rng.chance(1, 4);
  EXPECT_GT(Hits, 2200u);
  EXPECT_LT(Hits, 2800u);
}

TEST(TableWriter, AlignsColumns) {
  // Mostly a does-not-crash test; the alignment logic is simple.
  support::TableWriter Table(stdout);
  Table.addHeader({"a", "long-header", "n"});
  Table.setRightAligned(2);
  Table.addRow({"row", "x", "1234"});
  Table.addRow({"longer-row", "y"});
  Table.print();
  SUCCEED();
}

//===--- verifier diagnostics -------------------------------------------===//

std::vector<std::string> diagnose(const std::string &Body) {
  std::string Ptx =
      ".version 4.3\n.target sm_35\n"
      ".visible .entry k(\n    .param .u64 p0\n)\n{\n"
      "    .reg .u64 %rd<4>;\n    .reg .u32 %r<4>;\n"
      "    .reg .pred %p<2>;\n" +
      Body + "    ret;\n}\n";
  ptx::Parser P(Ptx);
  auto M = P.parseModule();
  if (!M)
    return {"parse error: " + P.error()};
  return ptx::verifyModule(*M);
}

TEST(Verifier, AcceptsWellFormed) {
  EXPECT_TRUE(diagnose("    ld.param.u64 %rd1, [p0];\n"
                       "    st.global.u32 [%rd1], 1;\n")
                  .empty());
}

TEST(Verifier, RejectsNonPredicateSetpDest) {
  auto Diags = diagnose("    setp.eq.u32 %r1, %r2, 0;\n");
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].find("predicate"), std::string::npos);
}

TEST(Verifier, RejectsWrongOperandCounts) {
  EXPECT_FALSE(diagnose("    add.u32 %r1, %r2;\n").empty());
  EXPECT_FALSE(diagnose("    mov.u32 %r1, %r2, %r3;\n").empty());
}

TEST(Verifier, RejectsUntypedMemoryOps) {
  // ld without a type suffix parses but cannot verify.
  EXPECT_FALSE(diagnose("    ld.param.u64 %rd1, [p0];\n"
                        "    ld.global %r1, [%rd1];\n")
                   .empty());
}

TEST(Verifier, RejectsAtomWithoutOperation) {
  ptx::Parser P(".version 4.3\n.target sm_35\n"
                ".visible .entry k(\n    .param .u64 p0\n)\n{\n"
                "    .reg .u64 %rd<2>;\n    .reg .u32 %r<3>;\n"
                "    ld.param.u64 %rd1, [p0];\n"
                "    atom.global.b32 %r1, [%rd1], %r2;\n"
                "    ret;\n}\n");
  auto M = P.parseModule();
  ASSERT_NE(M, nullptr) << P.error();
  EXPECT_FALSE(ptx::verifyModule(*M).empty());
}

TEST(Verifier, RejectsImmediateStoreTarget) {
  auto Diags = diagnose("    st.global.u32 %r1, 5;\n");
  EXPECT_FALSE(Diags.empty());
}

} // namespace
