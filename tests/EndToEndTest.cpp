//===- EndToEndTest.cpp - whole-pipeline smoke tests ------------------------===//

#include "barracuda/Session.h"

#include <gtest/gtest.h>

using namespace barracuda;

namespace {

const char *RacyKernel = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry racy(
    .param .u64 out
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %ctaid.x;
    st.global.u32 [%rd1], %r1;
    ret;
}
)";

const char *RaceFreeKernel = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry ok(
    .param .u64 out
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    cvt.u64.u32 %rd2, %r4;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r4;
    ret;
}
)";

TEST(EndToEnd, InterBlockWriteRaceDetected) {
  Session S;
  ASSERT_TRUE(S.loadModule(RacyKernel)) << S.error();
  uint64_t Out = S.alloc(64);
  support::Result<sim::LaunchResult> Result =
      S.launchKernel("racy", sim::Dim3(4), sim::Dim3(32), {Out});
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  ASSERT_TRUE(S.anyRaces());
  bool SawInterBlock = false;
  for (const auto &Race : S.races())
    if (Race.Scope == detector::RaceScopeKind::InterBlock)
      SawInterBlock = true;
  EXPECT_TRUE(SawInterBlock);
}

TEST(EndToEnd, SameValueIntraWarpWritesFiltered) {
  // Within one block every thread writes the same value to one location;
  // the same-value filter keeps the intra-warp lanes quiet, but warps
  // are still concurrent with each other.
  Session S;
  ASSERT_TRUE(S.loadModule(RacyKernel)) << S.error();
  uint64_t Out = S.alloc(64);
  support::Result<sim::LaunchResult> Result =
      S.launchKernel("racy", sim::Dim3(1), sim::Dim3(32), {Out});
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  // One warp, one block, identical values: no race at all.
  EXPECT_FALSE(S.anyRaces()) << S.races()[0].describe();
}

TEST(EndToEnd, RaceFreeKernelIsQuiet) {
  Session S;
  ASSERT_TRUE(S.loadModule(RaceFreeKernel)) << S.error();
  uint64_t Out = S.alloc(4 * 32 * 8);
  support::Result<sim::LaunchResult> Result =
      S.launchKernel("ok", sim::Dim3(8), sim::Dim3(32), {Out});
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_FALSE(S.anyRaces()) << S.races()[0].describe();
  // The kernel actually ran: out[i] == i.
  EXPECT_EQ(S.readU32(Out + 0), 0u);
  EXPECT_EQ(S.readU32(Out + 4 * 100), 100u);
  EXPECT_EQ(S.readU32(Out + 4 * 255), 255u);
}

TEST(EndToEnd, NativeSessionRunsWithoutDetection) {
  SessionOptions Options;
  Options.Instrument = false;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(RaceFreeKernel)) << S.error();
  uint64_t Out = S.alloc(4 * 64);
  support::Result<sim::LaunchResult> Result =
      S.launchKernel("ok", sim::Dim3(2), sim::Dim3(32), {Out});
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_EQ(Result.value().RecordsLogged, 0u);
  EXPECT_EQ(S.readU32(Out + 4 * 63), 63u);
}

} // namespace
