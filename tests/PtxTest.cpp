//===- PtxTest.cpp - lexer/parser/printer/CFG unit tests -------------------===//

#include "ptx/Cfg.h"
#include "ptx/Lexer.h"
#include "ptx/Parser.h"
#include "ptx/Printer.h"
#include "ptx/Verifier.h"

#include <gtest/gtest.h>

using namespace barracuda;
using namespace barracuda::ptx;

namespace {

const char *SimpleKernel = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry simple(
    .param .u64 out,
    .param .u32 n
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .pred %p<2>;

    ld.param.u64 %rd1, [out];
    ld.param.u32 %r5, [n];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    setp.ge.u32 %p1, %r4, %r5;
    @%p1 bra DONE;
    cvt.u64.u32 %rd2, %r4;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r1;
DONE:
    ret;
}
)";

TEST(Lexer, TokenKinds) {
  Lexer Lex("mov.u32 %r1, %tid.x; // comment\n st [%rd1+4], 0x10;");
  std::vector<Token> Tokens = Lex.lexAll();
  ASSERT_FALSE(Tokens.empty());
  EXPECT_TRUE(Tokens.back().is(TokenKind::Eof));
  EXPECT_TRUE(Tokens[0].isIdent("mov"));
  EXPECT_TRUE(Tokens[1].is(TokenKind::Dot));
  EXPECT_TRUE(Tokens[2].isIdent("u32"));
  EXPECT_TRUE(Tokens[3].is(TokenKind::Reg));
  EXPECT_EQ(Tokens[3].Text, "r1");
  EXPECT_TRUE(Tokens[4].is(TokenKind::Comma));
  EXPECT_TRUE(Tokens[5].is(TokenKind::Reg));
  EXPECT_EQ(Tokens[5].Text, "tid.x");
}

TEST(Lexer, Numbers) {
  Lexer Lex("42 -7 0x1F 0f3F800000 1.5");
  std::vector<Token> Tokens = Lex.lexAll();
  ASSERT_GE(Tokens.size(), 6u);
  EXPECT_EQ(Tokens[0].IntValue, 42);
  EXPECT_EQ(Tokens[1].IntValue, -7);
  EXPECT_EQ(Tokens[2].IntValue, 0x1F);
  EXPECT_TRUE(Tokens[3].is(TokenKind::Float));
  EXPECT_FLOAT_EQ(static_cast<float>(Tokens[3].FloatValue), 1.0f);
  EXPECT_DOUBLE_EQ(Tokens[4].FloatValue, 1.5);
}

TEST(Lexer, BlockComments) {
  Lexer Lex("/* a\nmultiline\ncomment */ ret ;");
  std::vector<Token> Tokens = Lex.lexAll();
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_TRUE(Tokens[0].isIdent("ret"));
  EXPECT_EQ(Tokens[0].Line, 3u);
}

TEST(Parser, SimpleKernel) {
  Parser P(SimpleKernel);
  auto M = P.parseModule();
  ASSERT_TRUE(M) << P.error();
  ASSERT_EQ(M->Kernels.size(), 1u);
  const Kernel &K = M->Kernels[0];
  EXPECT_EQ(K.Name, "simple");
  ASSERT_EQ(K.Params.size(), 2u);
  EXPECT_EQ(K.Params[0].Ty, Type::U64);
  EXPECT_EQ(K.Params[1].Ty, Type::U32);
  EXPECT_EQ(K.Params[1].Offset, 8u);
  EXPECT_EQ(K.Regs.size(), 4u + 6u + 2u);
  EXPECT_EQ(K.Body.size(), 13u);
  EXPECT_TRUE(verifyModule(*M).empty());
}

TEST(Parser, BranchTargetsResolved) {
  Parser P(SimpleKernel);
  auto M = P.parseModule();
  ASSERT_TRUE(M) << P.error();
  const Kernel &K = M->Kernels[0];
  const Instruction *Branch = nullptr;
  for (const Instruction &Insn : K.Body)
    if (Insn.Op == Opcode::Bra)
      Branch = &Insn;
  ASSERT_NE(Branch, nullptr);
  EXPECT_TRUE(Branch->isGuarded());
  EXPECT_EQ(Branch->Ops[0].Target, 12); // the ret under DONE:
}

TEST(Parser, Errors) {
  {
    Parser P(".version 4.3\n.target sm_35\n.entry k() { bogus.u32 %r1; }");
    EXPECT_EQ(P.parseModule(), nullptr);
    EXPECT_NE(P.error().find("unknown"), std::string::npos);
  }
  {
    Parser P(".entry k() { .reg .u32 %r<2>; mov.u32 %r9, 0; }");
    EXPECT_EQ(P.parseModule(), nullptr);
  }
  {
    Parser P(".entry k() { bra NOWHERE; }");
    EXPECT_EQ(P.parseModule(), nullptr);
    EXPECT_NE(P.error().find("undefined label"), std::string::npos);
  }
}

TEST(Parser, SharedAndGlobals) {
  const char *Src = R"(
.version 4.3
.target sm_35
.visible .global .u32 flag;
.visible .global .align 4 .b8 arr[64];
.visible .entry k()
{
    .reg .u32 %r<3>;
    .reg .u64 %rd<3>;
    .shared .align 4 .b8 tile[128];
    mov.u64 %rd1, tile;
    mov.u64 %rd2, flag;
    ld.shared.u32 %r1, [tile+4];
    st.global.u32 [arr+8], %r1;
    ret;
}
)";
  Parser P(Src);
  auto M = P.parseModule();
  ASSERT_TRUE(M) << P.error();
  EXPECT_EQ(M->Globals.size(), 2u);
  const Kernel &K = M->Kernels[0];
  ASSERT_EQ(K.SharedVars.size(), 1u);
  EXPECT_EQ(K.SharedVars[0].SizeBytes, 128u);
  EXPECT_EQ(K.SharedBytes, 128u);
}

TEST(Parser, VectorOperands) {
  const char *Src = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 p0
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<6>;
    ld.param.u64 %rd1, [p0];
    ld.global.v4.u32 {%r1, %r2, %r3, %r4}, [%rd1];
    st.global.v2.u32 [%rd1+16], {%r1, %r2};
    ret;
}
)";
  Parser P(Src);
  auto M = P.parseModule();
  ASSERT_TRUE(M) << P.error();
  const Kernel &K = M->Kernels[0];
  const Instruction &Load = K.Body[1];
  EXPECT_EQ(Load.VecWidth, 4u);
  ASSERT_EQ(Load.Ops[0].VecRegs.size(), 4u);
  EXPECT_EQ(Load.accessSize(), 16u);
  const Instruction &Store = K.Body[2];
  EXPECT_EQ(Store.VecWidth, 2u);
  EXPECT_EQ(Store.Ops[1].VecRegs.size(), 2u);
  EXPECT_TRUE(verifyModule(*M).empty());
  // Round trip.
  std::string Printed = printModule(*M);
  Parser P2(Printed);
  ASSERT_NE(P2.parseModule(), nullptr) << P2.error() << Printed;
}

TEST(Printer, RoundTrip) {
  Parser P(SimpleKernel);
  auto M = P.parseModule();
  ASSERT_TRUE(M) << P.error();
  std::string Text = printModule(*M);

  Parser P2(Text);
  auto M2 = P2.parseModule();
  ASSERT_TRUE(M2) << P2.error() << "\n" << Text;
  ASSERT_EQ(M2->Kernels.size(), 1u);
  EXPECT_EQ(M2->Kernels[0].Body.size(), M->Kernels[0].Body.size());
  // Printing again must be a fixpoint.
  EXPECT_EQ(printModule(*M2), Text);
}

TEST(Cfg, DiamondIpdom) {
  const char *Src = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    setp.eq.u32 %p1, %r1, 0;
    @%p1 bra THEN;
    mov.u32 %r2, 1;
    bra.uni JOIN;
THEN:
    mov.u32 %r2, 2;
JOIN:
    st.global.u32 [%rd1], %r2;
    ret;
}
)";
  Parser P(Src);
  auto M = P.parseModule();
  ASSERT_TRUE(M) << P.error();
  const Kernel &K = M->Kernels[0];
  Cfg G(K);
  // Blocks: [0..4) entry+branch, [4..6) else, [6..7) then, [7..9) join.
  ASSERT_EQ(G.blocks().size(), 4u);
  // The divergent branch at index 3 reconverges at JOIN (index 7).
  EXPECT_EQ(G.reconvergencePoint(3), 7u);
}

TEST(Cfg, LoopReconvergesAfterExit) {
  const char *Src = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, 0;
LOOP:
    add.u32 %r1, %r1, 1;
    setp.lt.u32 %p1, %r1, 10;
    @%p1 bra LOOP;
    st.global.u32 [%rd1], %r1;
    ret;
}
)";
  Parser P(Src);
  auto M = P.parseModule();
  ASSERT_TRUE(M) << P.error();
  Cfg G(M->Kernels[0]);
  // The backward branch at index 4 reconverges at the loop exit (5).
  EXPECT_EQ(G.reconvergencePoint(4), 5u);
}

} // namespace
