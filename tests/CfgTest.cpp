//===- CfgTest.cpp - control-flow graph and post-dominator tests ------------===//

#include "ptx/Cfg.h"
#include "ptx/Parser.h"

#include <gtest/gtest.h>

using namespace barracuda;
using namespace barracuda::ptx;

namespace {

std::unique_ptr<Module> parseKernel(const std::string &Body) {
  return parseOrDie(
      ".version 4.3\n.target sm_35\n"
      ".visible .entry k(\n    .param .u64 p0\n)\n{\n"
      "    .reg .u64 %rd<4>;\n    .reg .u32 %r<6>;\n"
      "    .reg .pred %p<4>;\n" +
      Body + "}\n");
}

TEST(Cfg, StraightLineIsOneBlock) {
  auto M = parseKernel("    ld.param.u64 %rd1, [p0];\n"
                       "    mov.u32 %r1, %tid.x;\n"
                       "    st.global.u32 [%rd1], %r1;\n"
                       "    ret;\n");
  Cfg G(M->Kernels[0]);
  EXPECT_EQ(G.blocks().size(), 1u);
  EXPECT_EQ(G.blocks()[0].Succs.size(), 1u);
  EXPECT_EQ(G.blocks()[0].Succs[0], G.exitId());
}

TEST(Cfg, NestedDiamonds) {
  auto M = parseKernel(R"(
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    setp.lt.u32 %p1, %r1, 16;
    @%p1 bra OUTER_THEN;
    mov.u32 %r2, 1;
    bra.uni OUTER_JOIN;
OUTER_THEN:
    setp.lt.u32 %p2, %r1, 8;
    @%p2 bra INNER_THEN;
    mov.u32 %r2, 2;
    bra.uni INNER_JOIN;
INNER_THEN:
    mov.u32 %r2, 3;
INNER_JOIN:
    mov.u32 %r3, %r2;
OUTER_JOIN:
    st.global.u32 [%rd1], %r2;
    ret;
)");
  const Kernel &K = M->Kernels[0];
  Cfg G(K);
  // Outer branch (index 3) reconverges at OUTER_JOIN; inner branch
  // (index 7) at INNER_JOIN.
  EXPECT_EQ(G.reconvergencePoint(3), K.Labels.at("OUTER_JOIN"));
  EXPECT_EQ(G.reconvergencePoint(7), K.Labels.at("INNER_JOIN"));
  // The outer join block post-dominates everything.
  uint32_t OuterJoin = G.blockOf(K.Labels.at("OUTER_JOIN"));
  for (uint32_t B = 0; B != G.blocks().size(); ++B)
    EXPECT_TRUE(G.postDominates(OuterJoin, B)) << "block " << B;
  // The inner join does not post-dominate the else side of the outer
  // branch.
  uint32_t InnerJoin = G.blockOf(K.Labels.at("INNER_JOIN"));
  uint32_t OuterElse = G.blockOf(4);
  EXPECT_FALSE(G.postDominates(InnerJoin, OuterElse));
}

TEST(Cfg, LoopWithInternalBranch) {
  auto M = parseKernel(R"(
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, 0;
LOOP:
    add.u32 %r1, %r1, 1;
    and.b32 %r2, %r1, 1;
    setp.eq.u32 %p1, %r2, 0;
    @%p1 bra SKIP;
    st.global.u32 [%rd1], %r1;
SKIP:
    setp.lt.u32 %p2, %r1, 10;
    @%p2 bra LOOP;
    ret;
)");
  const Kernel &K = M->Kernels[0];
  Cfg G(K);
  // The intra-loop branch reconverges at SKIP, inside the loop.
  EXPECT_EQ(G.reconvergencePoint(5), K.Labels.at("SKIP"));
  // The back edge reconverges at the loop exit (the ret).
  uint32_t BackEdge = K.Labels.at("SKIP") + 1;
  EXPECT_EQ(G.reconvergencePoint(BackEdge),
            static_cast<uint32_t>(K.Body.size()) - 1);
}

TEST(Cfg, InfiniteLoopPostDominatedByExitFallback) {
  auto M = parseKernel("    ld.param.u64 %rd1, [p0];\n"
                       "SPIN:\n"
                       "    bra.uni SPIN;\n");
  Cfg G(M->Kernels[0]);
  // No path to exit: the reconvergence point defaults to kernel end.
  EXPECT_EQ(G.reconvergencePoint(1), M->Kernels[0].Body.size());
}

TEST(Cfg, MultipleReturnsShareVirtualExit) {
  auto M = parseKernel(R"(
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    setp.eq.u32 %p1, %r1, 0;
    @%p1 bra EARLY;
    st.global.u32 [%rd1], %r1;
    ret;
EARLY:
    ret;
)");
  const Kernel &K = M->Kernels[0];
  Cfg G(K);
  // Divergent branch whose paths never rejoin before exiting:
  // reconvergence is kernel end.
  EXPECT_EQ(G.reconvergencePoint(3), K.Body.size());
}

} // namespace
