//===- FaultTest.cpp - fault-injection matrix and recovery tests ------------===//
//
// Sweeps every injection point of the fault harness across early/late
// firing and one/two queues, asserting the pipeline's resilience
// contract: no crash, no hang (the watchdog bounds machine faults), a
// structured Status for every failure, and exact degradation accounting
// (Processed + Dropped + Rejected == RecordsLogged) whenever lossless
// recovery is impossible.
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "detector/Host.h"
#include "fault/Fault.h"
#include "support/Format.h"
#include "trace/TraceFile.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace barracuda;

namespace {

/// A racy kernel sized for the matrix: 8 blocks x 2 warps, every thread
/// storing 16 times into a 16-slot buffer, so records spread over
/// multiple queues and late fault indices (@50) still fire.
const char RacyPtx[] = R"(
.version 4.3
.target sm_35
.address_size 64
.visible .entry fault_racy(
    .param .u64 buf
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    and.b32 %r2, %r1, 15;
    cvt.u64.u32 %rd2, %r2;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    mov.u32 %r3, 0;
LOOP:
    st.global.u32 [%rd3], %r3;
    add.u32 %r3, %r3, 1;
    setp.lt.u32 %p1, %r3, 16;
    @%p1 bra LOOP;
    ret;
}
)";

struct RunOutcome {
  bool Ok = false;
  support::Status Error;
  RunReport Report;
};

RunOutcome runRacy(SessionOptions Options,
                   const std::vector<std::string> &Specs) {
  for (const std::string &Spec : Specs) {
    support::Status Added = Options.Faults.add(Spec);
    EXPECT_TRUE(Added.ok()) << Added.describe();
  }
  Session S(Options);
  RunOutcome Out;
  if (!S.loadModule(RacyPtx)) {
    ADD_FAILURE() << S.error();
    return Out;
  }
  uint64_t Buf = S.alloc(64);
  support::Result<sim::LaunchResult> Result =
      S.launchKernel("fault_racy", sim::Dim3(8), sim::Dim3(64), {Buf});
  Out.Ok = Result.ok();
  Out.Error = Result.status();
  Out.Report = S.report();
  return Out;
}

/// The watermark invariant: every record the device logged is either
/// processed, dropped with accounting, or rejected with accounting.
void expectExactAccounting(const RunOutcome &Out) {
  const RunReport &R = Out.Report;
  EXPECT_EQ(R.Records.Processed + R.Resilience.RecordsDropped +
                R.Resilience.RecordsRejected,
            R.Launch.RecordsLogged)
      << "processed " << R.Records.Processed << " + dropped "
      << R.Resilience.RecordsDropped << " + rejected "
      << R.Resilience.RecordsRejected << " != logged "
      << R.Launch.RecordsLogged;
}

TEST(FaultMatrix, CleanBaseline) {
  RunOutcome Out = runRacy(SessionOptions(), {});
  ASSERT_TRUE(Out.Ok) << Out.Error.message();
  EXPECT_FALSE(Out.Report.Resilience.Degraded);
  EXPECT_EQ(Out.Report.Resilience.RecordsDropped, 0u);
  EXPECT_FALSE(Out.Report.Races.empty());
  expectExactAccounting(Out);
}

TEST(FaultMatrix, EngineFaults) {
  // Engine faults never fail the launch: the pipeline routes around or
  // degrades, the watermark completes, and the books balance exactly.
  for (const char *Kind : {"queue-stall", "consumer-death", "worker-throw"})
    for (uint64_t At : {uint64_t(0), uint64_t(50)})
      for (unsigned Queues : {1u, 2u}) {
        std::string Spec = support::formatString(
            "%s@%llu", Kind, static_cast<unsigned long long>(At));
        SCOPED_TRACE(Spec + support::formatString(" queues=%u", Queues));
        SessionOptions Options;
        Options.NumQueues = Queues;
        RunOutcome Out = runRacy(Options, {Spec});
        ASSERT_TRUE(Out.Ok) << Out.Error.message();
        expectExactAccounting(Out);
        const RunReport::ResilienceSection &R = Out.Report.Resilience;
        EXPECT_EQ(R.FaultsInjected, 1u);
        EXPECT_LE(R.FaultsHit, R.FaultsInjected);
        if (std::string(Kind) == "queue-stall") {
          // Lossless backpressure: nothing dropped, findings intact.
          EXPECT_EQ(R.RecordsDropped, 0u);
          EXPECT_EQ(R.RecordsRejected, 0u);
          EXPECT_FALSE(Out.Report.Races.empty());
        }
        if (std::string(Kind) == "worker-throw" && At == 0) {
          EXPECT_EQ(R.FaultsHit, 1u);
          EXPECT_TRUE(R.Degraded);
          EXPECT_GE(R.WorkerFailures, 1u);
          EXPECT_GE(R.QueuesQuarantined, 1u);
          EXPECT_GE(R.RecordsDropped, 1u);
          EXPECT_NE(R.FirstError.find("WorkerFailed"), std::string::npos)
              << R.FirstError;
        }
        if (std::string(Kind) == "consumer-death" && At == 0) {
          EXPECT_EQ(R.FaultsHit, 1u);
          EXPECT_GE(R.QueuesAbandoned, 1u);
          if (Queues == 1) {
            // No live queue to route around: records are rejected at
            // the producer and the launch degrades.
            EXPECT_TRUE(R.Degraded);
          } else {
            // The queue died before the launch began, so the route
            // table steered every block to the surviving queue:
            // lossless, clean, findings intact.
            EXPECT_FALSE(R.Degraded);
            EXPECT_GE(R.QueuesRerouted, 1u);
            EXPECT_EQ(R.RecordsDropped, 0u);
            EXPECT_EQ(R.RecordsRejected, 0u);
            EXPECT_FALSE(Out.Report.Races.empty());
          }
        }
      }
}

TEST(FaultMatrix, ConsumerDeathPinnedToQueue) {
  // ":q=1" pins the death to the second queue before the launch begins;
  // the route table steers queue 1's blocks to queue 0, so the launch
  // stays lossless and clean.
  SessionOptions Options;
  Options.NumQueues = 2;
  RunOutcome Out = runRacy(Options, {"consumer-death:q=1"});
  ASSERT_TRUE(Out.Ok) << Out.Error.message();
  expectExactAccounting(Out);
  EXPECT_EQ(Out.Report.Resilience.QueuesAbandoned, 1u);
  EXPECT_EQ(Out.Report.Resilience.QueuesRerouted, 1u);
  EXPECT_FALSE(Out.Report.Resilience.Degraded);
  EXPECT_EQ(Out.Report.Resilience.RecordsDropped, 0u);
  EXPECT_EQ(Out.Report.Resilience.RecordsRejected, 0u);
  // Every record still reached the detector through queue 0.
  EXPECT_EQ(Out.Report.Records.Processed, Out.Report.Launch.RecordsLogged);
  EXPECT_FALSE(Out.Report.Races.empty());
}

TEST(FaultMatrix, MachineFaultsConvertToKernelHang) {
  // Device-side hangs must terminate within the watchdog bound and
  // surface as structured KernelHang failures, never wedge the harness.
  for (const char *Kind : {"kernel-spin", "barrier-hang"})
    for (unsigned Queues : {1u, 2u}) {
      SCOPED_TRACE(support::formatString("%s queues=%u", Kind, Queues));
      SessionOptions Options;
      Options.NumQueues = Queues;
      Options.Machine.MaxWarpInstructions = 20000;
      RunOutcome Out = runRacy(Options, {Kind});
      ASSERT_FALSE(Out.Ok);
      EXPECT_EQ(Out.Error.code(), support::ErrorCode::KernelHang);
      EXPECT_NE(Out.Report.Launch.FailPc, sim::LaunchResult::InvalidPc);
      EXPECT_EQ(Out.Report.Launch.Code, support::ErrorCode::KernelHang);
      EXPECT_EQ(Out.Report.Resilience.WatchdogTrips, 1u);
      EXPECT_EQ(Out.Report.Resilience.FaultsHit, 1u);
      // Records logged before the hang still drained (the launch
      // returned, so the watermark was reached).
      expectExactAccounting(Out);
    }
}

TEST(FaultMatrix, WriterFaultsAreCaughtOnReplay) {
  // Corrupt the recorded trace (bit flip / mid-record truncation) and
  // prove the reader recovers: structured accounting, no crash, and
  // the detector still runs over what survived.
  for (const char *Kind : {"bitflip", "truncate"})
    for (uint64_t At : {uint64_t(0), uint64_t(2)}) {
      std::string Spec = support::formatString(
          "%s@%llu", Kind, static_cast<unsigned long long>(At));
      SCOPED_TRACE(Spec);
      std::string Path =
          support::formatString("/tmp/barracuda_fault_%s_%llu.bct", Kind,
                                static_cast<unsigned long long>(At));
      SessionOptions Options;
      Options.RecordTracePath = Path;
      RunOutcome Out = runRacy(Options, {Spec});
      ASSERT_TRUE(Out.Ok) << Out.Error.message();
      EXPECT_EQ(Out.Report.Resilience.RecordsCorrupted, 1u);
      EXPECT_TRUE(Out.Report.Resilience.Degraded);
      EXPECT_EQ(Out.Report.Resilience.FaultsHit, 1u);

      trace::TraceReader Reader;
      support::Status Read = Reader.read(Path);
      ASSERT_TRUE(Read.ok()) << Read.describe();
      EXPECT_GE(Reader.recordsDropped(), 1u);
      EXPECT_LT(Reader.records().size(), Out.Report.Launch.RecordsLogged);

      detector::DetectorOptions DetOpts;
      DetOpts.Hier.ThreadsPerBlock = Reader.header().ThreadsPerBlock;
      DetOpts.Hier.WarpsPerBlock = Reader.header().WarpsPerBlock;
      DetOpts.Hier.WarpSize = Reader.header().WarpSize;
      detector::SharedDetectorState State(DetOpts);
      detector::processCollected(State, 2, Reader.blockIds(),
                                 Reader.records());
      std::remove(Path.c_str());
    }
}

TEST(FaultPlan, ParsesAndRejectsSpecs) {
  fault::FaultPlan Plan;
  EXPECT_TRUE(Plan.add("worker-throw@100").ok());
  EXPECT_TRUE(Plan.add("consumer-death:q=1").ok());
  EXPECT_TRUE(Plan.add("bitflip@5").ok());
  EXPECT_TRUE(Plan.add("kernel-spin").ok());
  ASSERT_EQ(Plan.specs().size(), 4u);
  EXPECT_EQ(Plan.specs()[0].Kind, fault::FaultKind::WorkerThrow);
  EXPECT_EQ(Plan.specs()[0].At, 100u);
  EXPECT_EQ(Plan.specs()[0].Queue, fault::AnyQueue);
  EXPECT_EQ(Plan.specs()[1].Kind, fault::FaultKind::ConsumerDeath);
  EXPECT_EQ(Plan.specs()[1].Queue, 1u);

  for (const char *Bad :
       {"", "frobnicate", "worker-throw@", "worker-throw@x",
        "consumer-death:q=", "consumer-death:p=1", "bitflip@3:q=z"}) {
    support::Status Added = Plan.add(Bad);
    EXPECT_FALSE(Added.ok()) << "'" << Bad << "' parsed";
    EXPECT_EQ(Added.code(), support::ErrorCode::InvalidLaunch);
  }
  EXPECT_EQ(Plan.specs().size(), 4u);
}

TEST(FaultInjector, FiresEachSpecExactlyOnce) {
  fault::FaultPlan Plan;
  ASSERT_TRUE(Plan.add("worker-throw@3").ok());
  ASSERT_TRUE(Plan.add("worker-throw@10").ok());
  fault::FaultInjector Injector(Plan);
  EXPECT_EQ(Injector.fire(fault::FaultKind::WorkerThrow, 2), nullptr);
  const fault::FaultSpec *First =
      Injector.fire(fault::FaultKind::WorkerThrow, 5);
  ASSERT_NE(First, nullptr);
  EXPECT_EQ(First->At, 3u);
  // The same index cannot re-fire the claimed spec.
  EXPECT_EQ(Injector.fire(fault::FaultKind::WorkerThrow, 5), nullptr);
  const fault::FaultSpec *Second =
      Injector.fire(fault::FaultKind::WorkerThrow, 10);
  ASSERT_NE(Second, nullptr);
  EXPECT_EQ(Second->At, 10u);
  EXPECT_EQ(Injector.faultsInjected(), 2u);
  EXPECT_EQ(Injector.faultsHit(), 2u);
}

TEST(FaultInjector, QueuePinning) {
  fault::FaultPlan Plan;
  ASSERT_TRUE(Plan.add("consumer-death:q=1").ok());
  fault::FaultInjector Injector(Plan);
  EXPECT_EQ(Injector.fire(fault::FaultKind::ConsumerDeath, 99, 0), nullptr);
  EXPECT_NE(Injector.fire(fault::FaultKind::ConsumerDeath, 0, 1), nullptr);
}

TEST(TraceCorruption, FlipEveryByteNeverCrashes) {
  // Write a small canonical trace, then for every byte position flip it
  // and re-read. The reader must always terminate with a structured
  // result: either a clean header rejection or a successful read whose
  // drop accounting covers the damage.
  std::string Path = "/tmp/barracuda_fault_flip.bct";
  trace::TraceHeader Header;
  Header.ThreadsPerBlock = 96;
  Header.WarpsPerBlock = 3;
  Header.WarpSize = 32;
  Header.KernelName = "flip_kernel";
  const uint32_t NumRecords = 40;
  trace::TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, Header).ok());
  for (uint32_t I = 0; I != NumRecords; ++I) {
    trace::LogRecord Record = trace::makeMemRecord(
        trace::RecordOp::Write, I % 3, I, trace::MemSpace::Global, 4, 0x1);
    Record.Addr[0] = 0x2000 + I;
    ASSERT_TRUE(Writer.append(I % 2, Record));
  }
  ASSERT_TRUE(Writer.close().ok());

  std::FILE *In = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(In, nullptr);
  std::fseek(In, 0, SEEK_END);
  long Size = std::ftell(In);
  std::fseek(In, 0, SEEK_SET);
  std::vector<unsigned char> Original(static_cast<size_t>(Size));
  ASSERT_EQ(std::fread(Original.data(), 1, Original.size(), In),
            Original.size());
  std::fclose(In);

  std::string FlipPath = "/tmp/barracuda_fault_flip_mut.bct";
  for (size_t Byte = 0; Byte != Original.size(); ++Byte) {
    std::vector<unsigned char> Mutated = Original;
    Mutated[Byte] ^= 0xFF;
    std::FILE *Out = std::fopen(FlipPath.c_str(), "wb");
    ASSERT_NE(Out, nullptr);
    ASSERT_EQ(std::fwrite(Mutated.data(), 1, Mutated.size(), Out),
              Mutated.size());
    std::fclose(Out);

    trace::TraceReader Reader;
    support::Status Read = Reader.read(FlipPath);
    if (!Read.ok())
      continue; // structured header rejection — fine
    EXPECT_LE(Reader.records().size(), NumRecords) << "byte " << Byte;
    if (Reader.records().size() < NumRecords)
      EXPECT_GE(Reader.recordsDropped(), 1u) << "byte " << Byte;
    // When the header survived intact, what the reader kept is still
    // detectable input (a corrupted header may carry a different — but
    // bounds-checked — hierarchy, which would make detector indexing
    // meaningless, so gate on equality).
    if (Reader.header().ThreadsPerBlock == Header.ThreadsPerBlock &&
        Reader.header().WarpsPerBlock == Header.WarpsPerBlock &&
        Reader.header().WarpSize == Header.WarpSize &&
        Byte % 17 == 0) {
      detector::DetectorOptions DetOpts;
      DetOpts.Hier.ThreadsPerBlock = Reader.header().ThreadsPerBlock;
      DetOpts.Hier.WarpsPerBlock = Reader.header().WarpsPerBlock;
      DetOpts.Hier.WarpSize = Reader.header().WarpSize;
      detector::SharedDetectorState State(DetOpts);
      detector::processCollected(State, 1, Reader.blockIds(),
                                 Reader.records());
    }
  }
  std::remove(Path.c_str());
  std::remove(FlipPath.c_str());
}

} // namespace
