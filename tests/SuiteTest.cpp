//===- SuiteTest.cpp - the 66-program suite, one gtest case per program ----===//
//
// Parameterized over every suite program: BARRACUDA must produce the
// ground-truth verdict on all 66 (the paper's headline correctness
// claim). A second sweep sanity-checks the Racecheck model's documented
// strengths/blind spots on representative programs.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include <gtest/gtest.h>

using namespace barracuda;
using namespace barracuda::suite;

namespace {

class SuiteCorrectness : public ::testing::TestWithParam<SuiteProgram> {};

TEST_P(SuiteCorrectness, BarracudaVerdictMatchesGroundTruth) {
  const SuiteProgram &Program = GetParam();
  ToolVerdict Verdict = runBarracuda(Program);
  EXPECT_TRUE(Verdict.Completed) << Verdict.Detail;
  EXPECT_EQ(Verdict.ReportedProblem, Program.expectProblem())
      << "program: " << Program.Name << "\nnotes: " << Program.Notes
      << "\ndetail: " << Verdict.Detail << "\nptx:\n"
      << Program.Ptx;
}

std::string programName(const ::testing::TestParamInfo<SuiteProgram> &Info) {
  return Info.param.Name;
}

INSTANTIATE_TEST_SUITE_P(All, SuiteCorrectness,
                         ::testing::ValuesIn(concurrencySuite()),
                         programName);

TEST(SuiteInventory, SixtySixPrograms) {
  EXPECT_EQ(concurrencySuite().size(), 66u);
}

TEST(SuiteInventory, UniqueNames) {
  const auto &Suite = concurrencySuite();
  for (size_t I = 0; I != Suite.size(); ++I)
    for (size_t J = I + 1; J != Suite.size(); ++J)
      EXPECT_NE(Suite[I].Name, Suite[J].Name);
}

TEST(RacecheckModel, MissesGlobalMemoryRaces) {
  const SuiteProgram *Program = findSuiteProgram("g_ww_same_slot");
  ASSERT_NE(Program, nullptr);
  ToolVerdict Verdict = runRacecheckModel(*Program);
  EXPECT_TRUE(Verdict.Completed);
  EXPECT_FALSE(Verdict.ReportedProblem) << Verdict.Detail;
}

TEST(RacecheckModel, CatchesSharedMemoryRaces) {
  const SuiteProgram *Program = findSuiteProgram("s_ww_same_slot");
  ASSERT_NE(Program, nullptr);
  ToolVerdict Verdict = runRacecheckModel(*Program);
  EXPECT_TRUE(Verdict.Completed);
  EXPECT_TRUE(Verdict.ReportedProblem);
}

TEST(RacecheckModel, AcceptsBarrierSynchronizedShared) {
  const SuiteProgram *Program =
      findSuiteProgram("s_producer_consumer_barrier");
  ASSERT_NE(Program, nullptr);
  ToolVerdict Verdict = runRacecheckModel(*Program);
  EXPECT_TRUE(Verdict.Completed);
  EXPECT_FALSE(Verdict.ReportedProblem) << Verdict.Detail;
}

TEST(RacecheckModel, HangsOnSpinlocks) {
  const SuiteProgram *Program = findSuiteProgram("l_spinlock_correct");
  ASSERT_NE(Program, nullptr);
  ToolVerdict Verdict = runRacecheckModel(*Program);
  EXPECT_FALSE(Verdict.Completed);
}

TEST(RacecheckModel, FalsePositiveOnWarpSynchronousCode) {
  // Lockstep-safe warp-synchronous shared-memory exchange: BARRACUDA is
  // quiet (the endi join orders instruction i before i+1 across the
  // warp), the Racecheck model flags a hazard (no lockstep model) —
  // the paper's "reporting races where there are none (with intra-warp
  // synchronization)".
  SuiteProgram Program;
  Program.Name = "warp_sync_shared_exchange";
  Program.KernelName = Program.Name;
  Program.Grid = sim::Dim3(1);
  Program.Block = sim::Dim3(32);
  Program.Params = {ParamSpec::buffer(64)};
  Program.ExpectRace = false;
  Program.Ptx = makeTestKernel(
      Program.Name, ".param .u64 p0", R"(
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    mov.u64 %rd5, tile;
    cvt.u64.u32 %rd3, %r1;
    shl.b64 %rd3, %rd3, 2;
    add.u64 %rd6, %rd5, %rd3;
    st.shared.u32 [%rd6], %r1;
    add.u32 %r5, %r1, 1;
    rem.u32 %r5, %r5, 32;
    cvt.u64.u32 %rd3, %r5;
    shl.b64 %rd3, %rd3, 2;
    add.u64 %rd7, %rd5, %rd3;
    ld.shared.u32 %r6, [%rd7];
    ret;
)",
      "    .shared .align 4 .b8 tile[128];\n");
  EXPECT_FALSE(runBarracuda(Program).ReportedProblem);
  ToolVerdict Verdict = runRacecheckModel(Program);
  EXPECT_TRUE(Verdict.Completed);
  EXPECT_TRUE(Verdict.ReportedProblem)
      << "the model has no lockstep semantics";
}

TEST(RacecheckModel, NoFenceSemantics) {
  // Fence-synchronized shared flag passing: race-free under BARRACUDA's
  // semantics; the model either flags it or hangs in the spin loop —
  // either way it cannot certify it.
  const SuiteProgram *Program = findSuiteProgram("f_shared_flag_cta");
  ASSERT_NE(Program, nullptr);
  ToolVerdict Verdict = runRacecheckModel(*Program);
  EXPECT_FALSE(Verdict.correctFor(*Program));
}

} // namespace
