//===- RandomProgram.h - random terminating CUDA kernel generator ----------===//
//
// Shared between PropertyTest (detector equivalence) and LowerTest
// (lowered-vs-legacy simulator differential): generates a random,
// terminating kernel exercising straight-line global/shared accesses,
// nested divergence, barriers, atomics and fence bundles.
//
//===----------------------------------------------------------------------===//

#ifndef BARRACUDA_TESTS_RANDOMPROGRAM_H
#define BARRACUDA_TESTS_RANDOMPROGRAM_H

#include "support/Format.h"
#include "support/Rng.h"

#include <cstdint>
#include <string>

namespace barracuda {
namespace tests {

/// Generates a random, terminating kernel: straight-line global/shared
/// accesses, nested divergence, barriers, atomics and fence bundles.
class RandomProgram {
public:
  explicit RandomProgram(uint64_t Seed) : Rng(Seed) {
    Blocks = Rng.chance(1, 2) ? 1 : 2;
    ThreadsPerBlock = Rng.chance(1, 2) ? 32 : 64;
    Body = prolog();
    unsigned Statements = 6 + static_cast<unsigned>(Rng.nextBelow(10));
    for (unsigned I = 0; I != Statements; ++I)
      emitStatement(/*Depth=*/0);
    Body += "    ret;\n";
    Ptx = ".version 4.3\n.target sm_35\n.address_size 64\n\n"
          ".visible .entry rand(\n    .param .u64 p0\n)\n{\n"
          "    .reg .u64 %rd<10>;\n    .reg .u32 %r<12>;\n"
          "    .reg .pred %p<6>;\n"
          "    .shared .align 4 .b8 tile[256];\n" +
          Body + "}\n";
  }

  std::string Ptx;
  uint32_t Blocks;
  uint32_t ThreadsPerBlock;

private:
  std::string prolog() {
    return "    ld.param.u64 %rd1, [p0];\n"
           "    mov.u32 %r1, %tid.x;\n"
           "    mov.u32 %r2, %ctaid.x;\n"
           "    mov.u32 %r3, %ntid.x;\n"
           "    mad.lo.u32 %r4, %r2, %r3, %r1;\n"
           "    mov.u64 %rd5, tile;\n";
  }

  /// Emits address computation into %rd4 (global) or %rd6 (shared).
  void emitGlobalAddr() {
    switch (Rng.nextBelow(4)) {
    case 0: // own gid slot
      Body += "    cvt.u64.u32 %rd3, %r4;\n"
              "    shl.b64 %rd3, %rd3, 2;\n"
              "    add.u64 %rd4, %rd1, %rd3;\n";
      break;
    case 1: // gid % 4 (conflicting)
      Body += "    and.b32 %r8, %r4, 3;\n"
              "    cvt.u64.u32 %rd3, %r8;\n"
              "    shl.b64 %rd3, %rd3, 2;\n"
              "    add.u64 %rd4, %rd1, %rd3;\n";
      break;
    default: // a fixed hot slot
      Body += support::formatString(
          "    add.u64 %%rd4, %%rd1, %u;\n",
          1024 + 4 * static_cast<unsigned>(Rng.nextBelow(3)));
      break;
    }
  }

  void emitSharedAddr() {
    switch (Rng.nextBelow(3)) {
    case 0:
      Body += "    cvt.u64.u32 %rd3, %r1;\n"
              "    shl.b64 %rd3, %rd3, 2;\n"
              "    add.u64 %rd6, %rd5, %rd3;\n";
      break;
    case 1:
      Body += "    and.b32 %r8, %r1, 3;\n"
              "    cvt.u64.u32 %rd3, %r8;\n"
              "    shl.b64 %rd3, %rd3, 2;\n"
              "    add.u64 %rd6, %rd5, %rd3;\n";
      break;
    default:
      Body += support::formatString(
          "    add.u64 %%rd6, %%rd5, %u;\n",
          128 + 4 * static_cast<unsigned>(Rng.nextBelow(3)));
      break;
    }
  }

  void emitStatement(unsigned Depth) {
    uint64_t Pick = Rng.nextBelow(Depth == 0 ? 12 : 9);
    switch (Pick) {
    case 0: // global store
      emitGlobalAddr();
      Body += "    st.global.u32 [%rd4], %r4;\n";
      break;
    case 1: // global load
      emitGlobalAddr();
      Body += "    ld.global.u32 %r9, [%rd4];\n";
      break;
    case 2: // shared store
      emitSharedAddr();
      Body += "    st.shared.u32 [%rd6], %r1;\n";
      break;
    case 3: // shared load
      emitSharedAddr();
      Body += "    ld.shared.u32 %r9, [%rd6];\n";
      break;
    case 4: // atomic (global or shared)
      if (Rng.chance(1, 2)) {
        emitGlobalAddr();
        Body += "    atom.global.add.u32 %r9, [%rd4], 1;\n";
      } else {
        emitSharedAddr();
        Body += "    atom.shared.add.u32 %r9, [%rd6], 1;\n";
      }
      break;
    case 5: { // release bundle to a sync slot
      const char *Fence = Rng.chance(1, 2) ? "membar.gl" : "membar.cta";
      Body += support::formatString(
          "    add.u64 %%rd4, %%rd1, %u;\n",
          2048 + 4 * static_cast<unsigned>(Rng.nextBelow(2)));
      Body += support::formatString(
          "    %s;\n    st.global.u32 [%%rd4], 1;\n", Fence);
      break;
    }
    case 6: { // acquire bundle from a sync slot
      const char *Fence = Rng.chance(1, 2) ? "membar.gl" : "membar.cta";
      Body += support::formatString(
          "    add.u64 %%rd4, %%rd1, %u;\n",
          2048 + 4 * static_cast<unsigned>(Rng.nextBelow(2)));
      Body += support::formatString(
          "    ld.global.u32 %%r9, [%%rd4];\n    %s;\n", Fence);
      break;
    }
    case 7: // lone fence
      Body += Rng.chance(1, 2) ? "    membar.gl;\n" : "    membar.cta;\n";
      break;
    case 8: { // divergence (possibly nested)
      if (Depth >= 2) {
        Body += "    add.u32 %r9, %r4, 1;\n";
        break;
      }
      unsigned Split = 1 + static_cast<unsigned>(Rng.nextBelow(31));
      unsigned ThenLabel = LabelCounter++;
      unsigned JoinLabel = LabelCounter++;
      Body += support::formatString("    setp.lt.u32 %%p%u, %%r1, %u;\n",
                                    1 + Depth, Split);
      Body += support::formatString("    @%%p%u bra T%u;\n", 1 + Depth,
                                    ThenLabel);
      unsigned ElseCount = 1 + static_cast<unsigned>(Rng.nextBelow(2));
      for (unsigned I = 0; I != ElseCount; ++I)
        emitStatement(Depth + 1);
      Body += support::formatString("    bra.uni J%u;\nT%u:\n", JoinLabel,
                                    ThenLabel);
      unsigned ThenCount = 1 + static_cast<unsigned>(Rng.nextBelow(2));
      for (unsigned I = 0; I != ThenCount; ++I)
        emitStatement(Depth + 1);
      Body += support::formatString("J%u:\n", JoinLabel);
      break;
    }
    default: // top level only: barrier
      Body += "    bar.sync 0;\n";
      break;
    }
  }

  support::Rng Rng;
  std::string Body;
  unsigned LabelCounter = 0;
};

} // namespace tests
} // namespace barracuda

#endif // BARRACUDA_TESTS_RANDOMPROGRAM_H
