//===- TraceFileTest.cpp - trace recording/replay tests ---------------------===//

#include "barracuda/Session.h"
#include "detector/Host.h"
#include "suite/Suite.h"
#include "trace/TraceFile.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace barracuda;
using namespace barracuda::trace;

namespace {

std::string tempPath(const char *Name) {
  return std::string("/tmp/barracuda_test_") + Name + ".bct";
}

TEST(TraceFile, RoundTripsHeaderAndRecords) {
  std::string Path = tempPath("roundtrip");
  TraceHeader Header;
  Header.ThreadsPerBlock = 96;
  Header.WarpsPerBlock = 3;
  Header.WarpSize = 32;
  Header.KernelName = "roundtrip_kernel";

  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, Header).ok());
  for (uint32_t I = 0; I != 100; ++I) {
    LogRecord Record = makeMemRecord(RecordOp::Write, I % 7, I,
                                     MemSpace::Global, 4, 0xFF);
    Record.Addr[0] = 0x1000 + I;
    ASSERT_TRUE(Writer.append(I % 3, Record));
  }
  EXPECT_EQ(Writer.recordsWritten(), 100u);
  ASSERT_TRUE(Writer.close().ok());

  TraceReader Reader;
  ASSERT_TRUE(Reader.read(Path).ok()) << Reader.error();
  EXPECT_EQ(Reader.header().ThreadsPerBlock, 96u);
  EXPECT_EQ(Reader.header().WarpsPerBlock, 3u);
  EXPECT_EQ(Reader.header().KernelName, "roundtrip_kernel");
  ASSERT_EQ(Reader.records().size(), 100u);
  for (uint32_t I = 0; I != 100; ++I) {
    EXPECT_EQ(Reader.blockIds()[I], I % 3);
    EXPECT_EQ(Reader.records()[I].Warp, I % 7);
    EXPECT_EQ(Reader.records()[I].Addr[0], 0x1000 + I);
  }
  std::remove(Path.c_str());
}

TEST(TraceFile, RejectsGarbageAndMissing) {
  TraceReader Reader;
  EXPECT_FALSE(Reader.read("/nonexistent/path.bct").ok());
  std::string Path = tempPath("garbage");
  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  std::fputs("definitely not a trace", Out);
  std::fclose(Out);
  TraceReader Reader2;
  EXPECT_FALSE(Reader2.read(Path).ok());
  EXPECT_NE(Reader2.error().find("bad header"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(TraceFile, ReplayMatchesLiveDetection) {
  // Record a racy suite program while detecting live, then replay the
  // file offline: identical distinct races.
  const suite::SuiteProgram *Program =
      suite::findSuiteProgram("g_intrablock_ww");
  ASSERT_NE(Program, nullptr);
  std::string Path = tempPath("replay");

  SessionOptions Options;
  Options.RecordTracePath = Path;
  Session S(Options);
  ASSERT_TRUE(S.loadModule(Program->Ptx)) << S.error();
  uint64_t Buf = S.alloc(256);
  ASSERT_TRUE(S.launchKernel(Program->KernelName, Program->Grid,
                             Program->Block, {Buf})
                  .ok());
  ASSERT_TRUE(S.anyRaces());

  TraceReader Reader;
  ASSERT_TRUE(Reader.read(Path).ok()) << Reader.error();
  EXPECT_EQ(Reader.header().KernelName, Program->KernelName);
  detector::DetectorOptions DetOpts;
  DetOpts.Hier.ThreadsPerBlock = Reader.header().ThreadsPerBlock;
  DetOpts.Hier.WarpsPerBlock = Reader.header().WarpsPerBlock;
  DetOpts.Hier.WarpSize = Reader.header().WarpSize;
  detector::SharedDetectorState State(DetOpts);
  detector::processCollected(State, 2, Reader.blockIds(),
                             Reader.records());

  auto Live = S.races();
  auto Replayed = State.Reporter.races();
  ASSERT_EQ(Replayed.size(), Live.size());
  for (size_t I = 0; I != Live.size(); ++I) {
    EXPECT_EQ(Replayed[I].Pc, Live[I].Pc);
    EXPECT_EQ(Replayed[I].Scope, Live[I].Scope);
    EXPECT_EQ(Replayed[I].Space, Live[I].Space);
  }
  std::remove(Path.c_str());
}

} // namespace
