//===- MachineTest.cpp - SIMT interpreter unit tests -------------------------===//

#include "instrument/Instrumenter.h"
#include "ptx/Parser.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace barracuda;
using namespace barracuda::sim;

namespace {

/// Runs a single-kernel module natively and returns the memory object
/// for inspection.
class MachineHarness {
public:
  explicit MachineHarness(const std::string &Ptx)
      : Mod(ptx::parseOrDie(Ptx)), Machine(Memory) {
    sim::Machine::layoutModuleGlobals(*Mod, Memory);
  }

  LaunchResult run(const std::string &Kernel, Dim3 Grid, Dim3 Block,
                   const std::vector<uint64_t> &Params = {},
                   DeviceLogger *Logger = nullptr,
                   const instrument::KernelInstrumentation *Instr =
                       nullptr) {
    const ptx::Kernel *K = Mod->findKernel(Kernel);
    if (!K)
      return LaunchResult::failure("no kernel");
    ParamBuilder Builder(*K);
    for (size_t I = 0; I != Params.size(); ++I)
      Builder.set(I, Params[I]);
    LaunchConfig Config;
    Config.Grid = Grid;
    Config.Block = Block;
    return Machine.launch(*Mod, *K, Instr, Config, Builder.bytes(),
                          Logger);
  }

  GlobalMemory Memory;
  std::unique_ptr<ptx::Module> Mod;
  sim::Machine Machine;
};

std::string arithKernel(const std::string &Ops) {
  return ".version 4.3\n.target sm_35\n.address_size 64\n"
         ".visible .entry k(\n    .param .u64 out,\n    .param .u32 a,\n"
         "    .param .u32 b\n)\n{\n"
         "    .reg .u64 %rd<6>;\n    .reg .u32 %r<10>;\n"
         "    .reg .s32 %s<6>;\n    .reg .u64 %w<4>;\n"
         "    .reg .pred %p<4>;\n    .reg .f32 %f<6>;\n"
         "    ld.param.u64 %rd1, [out];\n"
         "    ld.param.u32 %r1, [a];\n"
         "    ld.param.u32 %r2, [b];\n" +
         Ops +
         "    st.global.u32 [%rd1], %r3;\n"
         "    ret;\n}\n";
}

uint32_t evalArith(const std::string &Ops, uint32_t A, uint32_t B) {
  MachineHarness H(arithKernel(Ops));
  uint64_t Out = H.Memory.allocate(64);
  LaunchResult Result = H.run("k", Dim3(1), Dim3(1), {Out, A, B});
  EXPECT_TRUE(Result.Ok) << Result.Error;
  return static_cast<uint32_t>(H.Memory.read(Out, 4));
}

//===--- arithmetic (parameterized over operations) ---------------------===//

struct ArithCase {
  const char *Name;
  const char *Ops;
  uint32_t A, B;
  uint32_t Expected;
};

class ArithSemantics : public ::testing::TestWithParam<ArithCase> {};

TEST_P(ArithSemantics, Matches) {
  const ArithCase &Case = GetParam();
  EXPECT_EQ(evalArith(Case.Ops, Case.A, Case.B), Case.Expected);
}

const ArithCase ArithCases[] = {
    {"add", "add.u32 %r3, %r1, %r2;\n", 7, 5, 12},
    {"add_wrap", "add.u32 %r3, %r1, %r2;\n", 0xFFFFFFFF, 2, 1},
    {"sub", "sub.u32 %r3, %r1, %r2;\n", 5, 7, 0xFFFFFFFE},
    {"mul_lo", "mul.lo.u32 %r3, %r1, %r2;\n", 100000, 100000,
     0x540BE400}, // 10^10 mod 2^32
    {"mul_hi_u", "mul.hi.u32 %r3, %r1, %r2;\n", 0x80000000, 4, 2},
    {"div_u", "div.u32 %r3, %r1, %r2;\n", 17, 5, 3},
    {"div_zero", "div.u32 %r3, %r1, %r2;\n", 17, 0, 0},
    {"rem_u", "rem.u32 %r3, %r1, %r2;\n", 17, 5, 2},
    {"min_u", "min.u32 %r3, %r1, %r2;\n", 3, 0xFFFFFFFF, 3},
    {"max_u", "max.u32 %r3, %r1, %r2;\n", 3, 0xFFFFFFFF, 0xFFFFFFFF},
    {"and", "and.b32 %r3, %r1, %r2;\n", 0xF0F0, 0xFF00, 0xF000},
    {"or", "or.b32 %r3, %r1, %r2;\n", 0xF0F0, 0x0F00, 0xFFF0},
    {"xor", "xor.b32 %r3, %r1, %r2;\n", 0xFF, 0x0F, 0xF0},
    {"not", "not.b32 %r3, %r1;\n", 0, 0, 0xFFFFFFFF},
    {"shl", "shl.b32 %r3, %r1, %r2;\n", 1, 31, 0x80000000},
    {"shl_over", "shl.b32 %r3, %r1, %r2;\n", 1, 40, 0},
    {"shr_u", "shr.u32 %r3, %r1, %r2;\n", 0x80000000, 31, 1},
    {"mad", "mad.lo.u32 %r3, %r1, %r2, %r1;\n", 3, 4, 15},
    {"neg", "neg.s32 %s1, %r1;\ncvt.u32.s32 %r3, %s1;\n", 5, 0,
     0xFFFFFFFB},
    {"abs", "cvt.s32.u32 %s1, %r1;\nabs.s32 %s2, %s1;\n"
            "cvt.u32.s32 %r3, %s2;\n",
     0xFFFFFFFB, 0, 5},
    {"selp_true",
     "setp.lt.u32 %p1, %r1, %r2;\nselp.u32 %r3, 111, 222, %p1;\n", 1, 2,
     111},
    {"selp_false",
     "setp.lt.u32 %p1, %r1, %r2;\nselp.u32 %r3, 111, 222, %p1;\n", 2, 1,
     222},
    {"setp_signed",
     // -1 < 1 signed (but not unsigned)
     "cvt.s32.u32 %s1, %r1;\nsetp.lt.s32 %p1, %s1, 1;\n"
     "selp.u32 %r3, 1, 0, %p1;\n",
     0xFFFFFFFF, 0, 1},
    {"shr_signed",
     "cvt.s32.u32 %s1, %r1;\nshr.s32 %s2, %s1, 4;\n"
     "cvt.u32.s32 %r3, %s2;\n",
     0xFFFFFF00, 0, 0xFFFFFFF0},
    {"div_signed",
     "cvt.s32.u32 %s1, %r1;\ncvt.s32.u32 %s2, %r2;\n"
     "div.s32 %s3, %s1, %s2;\ncvt.u32.s32 %r3, %s3;\n",
     0xFFFFFFF8, 2, 0xFFFFFFFC}, // -8 / 2 = -4
    {"mul_wide",
     "mul.wide.u32 %w1, %r1, %r2;\nshr.u64 %w2, %w1, 32;\n"
     "cvt.u32.u64 %r3, %w2;\n",
     0x80000000, 8, 4},
    {"popc", "popc.b32 %r3, %r1;\n", 0xF0F01234, 0, 13},
    {"clz", "clz.b32 %r3, %r1;\n", 0x00010000, 0, 15},
    {"clz_zero", "clz.b32 %r3, %r1;\n", 0, 0, 32},
    {"brev", "brev.b32 %r3, %r1;\n", 0x80000001, 0, 0x80000001},
    {"brev_asym", "brev.b32 %r3, %r1;\n", 0x00000001, 0, 0x80000000},
    {"fadd",
     "cvt.rn.f32.u32 %f1, %r1;\ncvt.rn.f32.u32 %f2, %r2;\n"
     "add.f32 %f3, %f1, %f2;\ncvt.u32.f32 %r3, %f3;\n",
     10, 32, 42},
    {"fmul_imm",
     "cvt.rn.f32.u32 %f1, %r1;\nmul.f32 %f2, %f1, 0f40000000;\n"
     "cvt.u32.f32 %r3, %f2;\n",
     21, 0, 42},
    {"fdiv",
     "cvt.rn.f32.u32 %f1, %r1;\ncvt.rn.f32.u32 %f2, %r2;\n"
     "div.f32 %f3, %f1, %f2;\ncvt.u32.f32 %r3, %f3;\n",
     84, 2, 42},
};

std::string arithName(const ::testing::TestParamInfo<ArithCase> &Info) {
  return Info.param.Name;
}

INSTANTIATE_TEST_SUITE_P(Ops, ArithSemantics,
                         ::testing::ValuesIn(ArithCases), arithName);

//===--- atomics ----------------------------------------------------------===//

struct AtomCase {
  const char *Name;
  const char *Insn;
  uint32_t Init;
  uint32_t Operand;
  uint32_t ExpectedMem;
  uint32_t ExpectedOld;
};

class AtomSemantics : public ::testing::TestWithParam<AtomCase> {};

TEST_P(AtomSemantics, Matches) {
  const AtomCase &Case = GetParam();
  std::string Ptx = ".version 4.3\n.target sm_35\n.address_size 64\n"
                    ".visible .entry k(\n    .param .u64 out,\n"
                    "    .param .u32 b\n)\n{\n"
                    "    .reg .u64 %rd<4>;\n    .reg .u32 %r<6>;\n"
                    "    ld.param.u64 %rd1, [out];\n"
                    "    ld.param.u32 %r1, [b];\n" +
                    std::string(Case.Insn) +
                    "    st.global.u32 [%rd1+4], %r2;\n"
                    "    ret;\n}\n";
  MachineHarness H(Ptx);
  uint64_t Out = H.Memory.allocate(64);
  H.Memory.write(Out, 4, Case.Init);
  LaunchResult Result = H.run("k", Dim3(1), Dim3(1), {Out, Case.Operand});
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(H.Memory.read(Out, 4), Case.ExpectedMem);
  EXPECT_EQ(H.Memory.read(Out + 4, 4), Case.ExpectedOld);
}

const AtomCase AtomCases[] = {
    {"exch", "atom.global.exch.b32 %r2, [%rd1], %r1;\n", 5, 9, 9, 5},
    {"add", "atom.global.add.u32 %r2, [%rd1], %r1;\n", 5, 9, 14, 5},
    {"cas_hit", "atom.global.cas.b32 %r2, [%rd1], 5, 77;\n", 5, 0, 77, 5},
    {"cas_miss", "atom.global.cas.b32 %r2, [%rd1], 6, 77;\n", 5, 0, 5, 5},
    {"min", "atom.global.min.u32 %r2, [%rd1], %r1;\n", 5, 3, 3, 5},
    {"max", "atom.global.max.u32 %r2, [%rd1], %r1;\n", 5, 3, 5, 5},
    {"and", "atom.global.and.b32 %r2, [%rd1], %r1;\n", 0xFF, 0x0F, 0x0F,
     0xFF},
    {"or", "atom.global.or.b32 %r2, [%rd1], %r1;\n", 0xF0, 0x0F, 0xFF,
     0xF0},
    {"xor", "atom.global.xor.b32 %r2, [%rd1], %r1;\n", 0xFF, 0x0F, 0xF0,
     0xFF},
    {"inc_below", "atom.global.inc.u32 %r2, [%rd1], %r1;\n", 5, 9, 6, 5},
    {"inc_wrap", "atom.global.inc.u32 %r2, [%rd1], %r1;\n", 9, 9, 0, 9},
    {"dec", "atom.global.dec.u32 %r2, [%rd1], %r1;\n", 5, 9, 4, 5},
    {"dec_wrap", "atom.global.dec.u32 %r2, [%rd1], %r1;\n", 0, 9, 9, 0},
};

std::string atomName(const ::testing::TestParamInfo<AtomCase> &Info) {
  return Info.param.Name;
}

INSTANTIATE_TEST_SUITE_P(Ops, AtomSemantics,
                         ::testing::ValuesIn(AtomCases), atomName);

//===--- control flow, divergence, barriers -----------------------------===//

TEST(Machine, DivergenceReconverges) {
  // Each lane takes a different amount of work in a divergent loop; all
  // must still produce their results.
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, 0;
    mov.u32 %r3, 0;
LOOP:
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra FIN;
    add.u32 %r3, %r3, %r2;
    add.u32 %r2, %r2, 1;
    bra.uni LOOP;
FIN:
    cvt.u64.u32 %rd2, %r1;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r3;
    ret;
}
)";
  MachineHarness H(Ptx);
  uint64_t Out = H.Memory.allocate(4 * 32);
  ASSERT_TRUE(H.run("k", Dim3(1), Dim3(32), {Out}).Ok);
  for (uint32_t Lane = 0; Lane != 32; ++Lane)
    EXPECT_EQ(H.Memory.read(Out + 4 * Lane, 4), Lane * (Lane - 1) / 2)
        << "lane " << Lane;
}

TEST(Machine, BarrierOrdersWarps) {
  // Warp 1 reads what warp 0 wrote before the barrier.
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .pred %p<3>;
    .shared .align 4 .b8 tile[256];
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    setp.ge.u32 %p1, %r1, 32;
    @%p1 bra WAITSIDE;
    mov.u64 %rd2, tile;
    cvt.u64.u32 %rd3, %r1;
    shl.b64 %rd3, %rd3, 2;
    add.u64 %rd2, %rd2, %rd3;
    add.u32 %r2, %r1, 100;
    st.shared.u32 [%rd2], %r2;
WAITSIDE:
    bar.sync 0;
    setp.lt.u32 %p2, %r1, 32;
    @%p2 bra DONE;
    sub.u32 %r3, %r1, 32;
    mov.u64 %rd2, tile;
    cvt.u64.u32 %rd3, %r3;
    shl.b64 %rd3, %rd3, 2;
    add.u64 %rd2, %rd2, %rd3;
    ld.shared.u32 %r4, [%rd2];
    cvt.u64.u32 %rd3, %r3;
    shl.b64 %rd3, %rd3, 2;
    add.u64 %rd2, %rd1, %rd3;
    st.global.u32 [%rd2], %r4;
DONE:
    ret;
}
)";
  MachineHarness H(Ptx);
  uint64_t Out = H.Memory.allocate(4 * 32);
  ASSERT_TRUE(H.run("k", Dim3(1), Dim3(64), {Out}).Ok);
  for (uint32_t I = 0; I != 32; ++I)
    EXPECT_EQ(H.Memory.read(Out + 4 * I, 4), I + 100);
}

TEST(Machine, GenericAddressingRoundTrip) {
  // cvta.shared to generic, store through generic, read back shared.
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<4>;
    .shared .align 4 .b8 tile[64];
    ld.param.u64 %rd1, [out];
    mov.u64 %rd2, tile;
    cvta.shared.u64 %rd3, %rd2;
    st.u32 [%rd3+8], 4242;
    ld.shared.u32 %r1, [tile+8];
    cvta.to.shared.u64 %rd4, %rd3;
    ld.shared.u32 %r2, [%rd4+8];
    add.u32 %r1, %r1, %r2;
    st.global.u32 [%rd1], %r1;
    ret;
}
)";
  MachineHarness H(Ptx);
  uint64_t Out = H.Memory.allocate(64);
  ASSERT_TRUE(H.run("k", Dim3(1), Dim3(1), {Out}).Ok);
  EXPECT_EQ(H.Memory.read(Out, 4), 8484u);
}

TEST(Machine, LocalMemoryIsThreadPrivate) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<4>;
    .local .align 4 .b8 scratch[16];
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    st.local.u32 [scratch], %r1;
    bar.sync 0;
    ld.local.u32 %r2, [scratch];
    cvt.u64.u32 %rd2, %r1;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r2;
    ret;
}
)";
  MachineHarness H(Ptx);
  uint64_t Out = H.Memory.allocate(4 * 64);
  ASSERT_TRUE(H.run("k", Dim3(1), Dim3(64), {Out}).Ok);
  for (uint32_t Tid = 0; Tid != 64; ++Tid)
    EXPECT_EQ(H.Memory.read(Out + 4 * Tid, 4), Tid);
}

TEST(Machine, SpecialRegisters) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<8>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    setp.ne.u32 %p1, %r1, 0;
    @%p1 bra SKIP;
    setp.ne.u32 %p1, %r2, 1;
    @%p1 bra SKIP;
    mov.u32 %r3, %ntid.x;
    st.global.u32 [%rd1], %r3;
    mov.u32 %r4, %nctaid.x;
    st.global.u32 [%rd1+4], %r4;
    mov.u32 %r5, %laneid;
    st.global.u32 [%rd1+8], %r5;
    mov.u32 %r6, %WARP_SZ;
    st.global.u32 [%rd1+12], %r6;
SKIP:
    ret;
}
)";
  MachineHarness H(Ptx);
  uint64_t Out = H.Memory.allocate(64);
  ASSERT_TRUE(H.run("k", Dim3(3), Dim3(48), {Out}).Ok);
  EXPECT_EQ(H.Memory.read(Out, 4), 48u);
  EXPECT_EQ(H.Memory.read(Out + 4, 4), 3u);
  EXPECT_EQ(H.Memory.read(Out + 8, 4), 0u);
  EXPECT_EQ(H.Memory.read(Out + 12, 4), 32u);
}

TEST(Machine, MultiDimensionalLaunch) {
  // 2-D block and grid: flatten coordinates into a unique slot.
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<10>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %tid.y;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %ctaid.y;
    // local linear id = tid.y * ntid.x + tid.x
    mad.lo.u32 %r5, %r2, %r3, %r1;
    // unique slot = (ctaid.y * 2 + local) -- grid is 1x2
    mov.u32 %r6, %ntid.y;
    mul.lo.u32 %r7, %r3, %r6;
    mad.lo.u32 %r8, %r4, %r7, %r5;
    cvt.u64.u32 %rd2, %r8;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r8;
    ret;
}
)";
  MachineHarness H(Ptx);
  uint64_t Out = H.Memory.allocate(4 * 64);
  ASSERT_TRUE(H.run("k", Dim3(1, 2), Dim3(4, 4), {Out}).Ok);
  for (uint32_t I = 0; I != 32; ++I)
    EXPECT_EQ(H.Memory.read(Out + 4 * I, 4), I);
}

TEST(Machine, WatchdogCatchesInfiniteLoop) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<2>;
    ld.param.u64 %rd1, [out];
SPIN:
    bra.uni SPIN;
}
)";
  GlobalMemory Memory;
  MachineOptions Options;
  Options.MaxWarpInstructions = 10000;
  auto Mod = ptx::parseOrDie(Ptx);
  sim::Machine Machine(Memory, Options);
  ParamBuilder Builder(Mod->Kernels[0]);
  Builder.set(0, Memory.allocate(64));
  LaunchConfig Config;
  Config.Grid = Dim3(1);
  Config.Block = Dim3(32);
  LaunchResult Result = Machine.launch(*Mod, Mod->Kernels[0], nullptr,
                                       Config, Builder.bytes(), nullptr);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("watchdog"), std::string::npos);
  EXPECT_EQ(Result.Code, support::ErrorCode::KernelHang);
  EXPECT_NE(Result.FailPc, LaunchResult::InvalidPc);
}

TEST(Machine, DivergentBarrierHangTripsWatchdog) {
  // Warp 0 reaches bar.sync while warp 1 spins on a flag that is never
  // set: the barrier can never be satisfied, yet the spinning warp
  // keeps the machine "making progress". Only the watchdog can end
  // this, and it must surface a structured KernelHang naming the
  // barrier pc the stuck warp is parked at — not loop forever and not
  // report a generic failure.
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 flag
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<4>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [flag];
    mov.u32 %r1, %tid.x;
    setp.lt.u32 %p1, %r1, 32;
    @%p1 bra SYNC;
WAIT:
    ld.volatile.global.u32 %r2, [%rd1];
    setp.eq.u32 %p2, %r2, 0;
    @%p2 bra WAIT;
SYNC:
    bar.sync 0;
    ret;
}
)";
  GlobalMemory Memory;
  MachineOptions Options;
  Options.MaxWarpInstructions = 20000;
  auto Mod = ptx::parseOrDie(Ptx);
  sim::Machine Machine(Memory, Options);
  uint64_t Flag = Memory.allocate(64); // zeroed: the wait never ends
  ParamBuilder Builder(Mod->Kernels[0]);
  Builder.set(0, Flag);
  LaunchConfig Config;
  Config.Grid = Dim3(1);
  Config.Block = Dim3(64); // two warps: one at the barrier, one waiting
  LaunchResult Result = Machine.launch(*Mod, Mod->Kernels[0], nullptr,
                                       Config, Builder.bytes(), nullptr);
  ASSERT_FALSE(Result.Ok);
  EXPECT_EQ(Result.Code, support::ErrorCode::KernelHang);
  // The reported pc is the blocked barrier, the most useful place to
  // start debugging a divergent bar.sync.
  const ptx::Kernel &K = Mod->Kernels[0];
  ASSERT_LT(Result.FailPc, K.Body.size());
  EXPECT_EQ(K.Body[Result.FailPc].Op, ptx::Opcode::Bar);
}

TEST(Machine, SharedOutOfBoundsFailsCleanly) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<2>;
    .shared .align 4 .b8 tile[16];
    ld.param.u64 %rd1, [out];
    ld.shared.u32 %r1, [tile+64];
    ret;
}
)";
  MachineHarness H(Ptx);
  uint64_t Out = H.Memory.allocate(64);
  LaunchResult Result = H.run("k", Dim3(1), Dim3(1), {Out});
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("out of bounds"), std::string::npos);
}

TEST(Machine, WavesCoverLargeGrids) {
  // More blocks than the resident cap: waves must still cover them all.
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<4>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %ctaid.x;
    cvt.u64.u32 %rd2, %r1;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    red.global.add.u32 [%rd3], 1;
    ret;
}
)";
  GlobalMemory Memory;
  MachineOptions Options;
  Options.MaxResidentBlocks = 4;
  auto Mod = ptx::parseOrDie(Ptx);
  sim::Machine Machine(Memory, Options);
  uint64_t Out = Memory.allocate(4 * 64);
  ParamBuilder Builder(Mod->Kernels[0]);
  Builder.set(0, Out);
  LaunchConfig Config;
  Config.Grid = Dim3(17);
  Config.Block = Dim3(32);
  LaunchResult Result = Machine.launch(*Mod, Mod->Kernels[0], nullptr,
                                       Config, Builder.bytes(), nullptr);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  for (uint32_t Block = 0; Block != 17; ++Block)
    EXPECT_EQ(Memory.read(Out + 4 * Block, 4), 32u) << Block;
}

TEST(Machine, ModuleGlobalsZeroedAndAddressed) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .global .u32 counter;
.visible .global .align 4 .b8 table[16];
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<3>;
    .reg .u32 %r<4>;
    ld.param.u64 %rd1, [out];
    ld.global.u32 %r1, [counter];
    st.global.u32 [%rd1], %r1;
    st.global.u32 [table+4], 7;
    ld.global.u32 %r2, [table+4];
    st.global.u32 [%rd1+4], %r2;
    ret;
}
)";
  MachineHarness H(Ptx);
  uint64_t Out = H.Memory.allocate(64);
  ASSERT_TRUE(H.run("k", Dim3(1), Dim3(1), {Out}).Ok);
  EXPECT_EQ(H.Memory.read(Out, 4), 0u);     // zero-initialized
  EXPECT_EQ(H.Memory.read(Out + 4, 4), 7u); // round trip
}

TEST(Machine, VectorLoadStore) {
  const char *Ptx = R"(
.version 4.3
.target sm_35
.visible .entry k(
    .param .u64 out
)
{
    .reg .u64 %rd<3>;
    .reg .u32 %r<8>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, 11;
    mov.u32 %r2, 22;
    mov.u32 %r3, 33;
    mov.u32 %r4, 44;
    st.global.v4.u32 [%rd1], {%r1, %r2, %r3, %r4};
    ld.global.v2.u32 {%r5, %r6}, [%rd1+8];
    add.u32 %r7, %r5, %r6;
    st.global.u32 [%rd1+16], %r7;
    ret;
}
)";
  MachineHarness H(Ptx);
  uint64_t Out = H.Memory.allocate(64);
  ASSERT_TRUE(H.run("k", Dim3(1), Dim3(1), {Out}).Ok);
  EXPECT_EQ(H.Memory.read(Out, 4), 11u);
  EXPECT_EQ(H.Memory.read(Out + 4, 4), 22u);
  EXPECT_EQ(H.Memory.read(Out + 8, 4), 33u);
  EXPECT_EQ(H.Memory.read(Out + 12, 4), 44u);
  EXPECT_EQ(H.Memory.read(Out + 16, 4), 77u);
}

TEST(Memory, PagedSparseAccess) {
  GlobalMemory Memory;
  Memory.write(0x10000000, 4, 0xAABBCCDD);
  Memory.write(0x7FFF0000000, 8, 0x1122334455667788ULL);
  EXPECT_EQ(Memory.read(0x10000000, 4), 0xAABBCCDDu);
  EXPECT_EQ(Memory.read(0x7FFF0000000, 8), 0x1122334455667788ULL);
  EXPECT_EQ(Memory.read(0x999999, 4), 0u); // untouched reads zero
  // Cross-page access.
  uint64_t Boundary = (1ULL << GlobalMemory::PageBits) - 2;
  Memory.write(Boundary, 4, 0xDEADBEEF);
  EXPECT_EQ(Memory.read(Boundary, 4), 0xDEADBEEFu);
}

TEST(Memory, AllocatorAlignsAndAdvances) {
  GlobalMemory Memory;
  uint64_t A = Memory.allocate(10, 8);
  uint64_t B = Memory.allocate(1, 64);
  EXPECT_EQ(A % 8, 0u);
  EXPECT_EQ(B % 64, 0u);
  EXPECT_GE(B, A + 10);
}

} // namespace
