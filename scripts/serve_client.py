#!/usr/bin/env python3
"""Reference client for the barracuda-serve line protocol.

The daemon (tools/barracuda-serve.cpp) speaks schemaVersion-1
line-delimited JSON over a unix domain socket: one request object per
'\n'-terminated line, one response object per line back, answered in
order per connection. See docs/SERVE.md for the full schema.

Usable as a library:

    with ServeClient("/tmp/barracuda-serve.sock") as c:
        kernels = c.load_module("tenant-a", ptx_text)
        buf = c.alloc("tenant-a", 64)
        result = c.launch("tenant-a", "histogram", grid=4, block=64,
                          params=[buf])
        print(result["racesTotal"], "distinct races")

or as a smoke driver (used by CI):

    serve_client.py --socket /tmp/barracuda-serve.sock --ptx file.ptx \
        --kernel histogram --grid 4 --block 64 --alloc 64 --expect-races

Typed failures raise ServeError carrying the server's status code
("Overloaded", "InvalidLaunch", "ModuleInvalid", ...), so callers can
back off on Overloaded instead of treating it as a protocol failure.
"""

import argparse
import json
import random
import socket
import sys
import time

SCHEMA_VERSION = 1


class RetryPolicy:
    """Jittered, capped exponential backoff for transient refusals.

    Mirrors serve::RetryOptions / support::RetryBackoff on the C++ side:
    Overloaded is always retried while attempts remain; Draining only
    when retry_draining is set (a draining server will never accept, so
    that flavor is for callers that fail over between attempts). The
    delay for attempt N is equal-jittered around base * 2**N, capped at
    max_delay. Deadline-aware: the loop never sleeps past deadline_ms.
    """

    def __init__(self, max_attempts=1, base_delay_ms=10,
                 max_delay_ms=2000, retry_draining=False, seed=None):
        self.max_attempts = max(1, max_attempts)
        self.base_delay_ms = base_delay_ms
        self.max_delay_ms = max_delay_ms
        self.retry_draining = retry_draining
        self.rng = random.Random(seed)

    def retryable(self, code):
        return code == "Overloaded" or (self.retry_draining
                                        and code == "Draining")

    def next_delay_ms(self, attempt):
        exp = min(self.max_delay_ms,
                  self.base_delay_ms * (2 ** min(attempt, 32)))
        half = max(1, exp // 2)
        return half + self.rng.randrange(exp - half + 1)


class ServeError(RuntimeError):
    """A typed error response ("status" != "Ok")."""

    def __init__(self, op, code, message):
        super().__init__(f"{op}: {code}: {message}")
        self.op = op
        self.code = code
        self.message = message


class ServeClient:
    """One connection to the daemon. Not thread-safe; one per thread."""

    def __init__(self, socket_path, timeout=60.0, retry=None):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(socket_path)
        self.buffer = b""
        self.retry = retry or RetryPolicy()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def close(self):
        if self.sock is not None:
            self.sock.close()
            self.sock = None

    def call(self, op, tenant=None, **fields):
        """Sends one request and returns the Ok response envelope."""
        request = {"schemaVersion": SCHEMA_VERSION, "op": op}
        if tenant is not None:
            request["tenant"] = tenant
        request.update(fields)
        self.sock.sendall(json.dumps(request).encode() + b"\n")
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buffer += chunk
        line, _, self.buffer = self.buffer.partition(b"\n")
        response = json.loads(line)
        if response.get("schemaVersion") != SCHEMA_VERSION:
            raise ServeError(op, "ProtocolError",
                             f"unexpected schemaVersion in {response}")
        if response.get("status") != "Ok":
            raise ServeError(op, response.get("status", "Internal"),
                             response.get("error", "(no message)"))
        return response

    def call_with_retry(self, op, tenant=None, deadline_ms=0, **fields):
        """call() under the client's RetryPolicy.

        Transient refusals back off with jitter and try again; when
        deadline_ms is nonzero the loop never sleeps past it — the last
        typed refusal is raised instead of overrunning the budget.
        """
        start = time.monotonic()
        for attempt in range(self.retry.max_attempts):
            try:
                return self.call(op, tenant, **fields)
            except ServeError as error:
                last_chance = attempt + 1 == self.retry.max_attempts
                if not self.retry.retryable(error.code) or last_chance:
                    raise
                delay_ms = self.retry.next_delay_ms(attempt)
                if deadline_ms:
                    elapsed_ms = (time.monotonic() - start) * 1000.0
                    if elapsed_ms + delay_ms >= deadline_ms:
                        raise
                time.sleep(delay_ms / 1000.0)

    # --- one wrapper per op -------------------------------------------
    def hello(self):
        return self.call("hello")

    def load_module(self, tenant, ptx, faults=None, watchdog=0):
        fields = {"ptx": ptx}
        if faults:
            fields["faults"] = list(faults)
        if watchdog:
            fields["watchdogInstructions"] = watchdog
        return self.call("load_module", tenant, **fields)["kernels"]

    def alloc(self, tenant, nbytes, align=8):
        return self.call("alloc", tenant, bytes=nbytes, align=align)["addr"]

    def fill(self, tenant, addr, nbytes, value=0):
        self.call("fill", tenant, addr=addr, bytes=nbytes, value=value)

    def write_u32(self, tenant, addr, value):
        self.call("write_u32", tenant, addr=addr, value=value)

    def read_u32(self, tenant, addr):
        return self.call("read_u32", tenant, addr=addr)["value"]

    def launch(self, tenant, kernel, grid, block, params=None,
               want_report=False, deadline_ms=0):
        """Blocking launch; returns the completed-launch payload.

        A nonzero deadline_ms rides the frame (the server bounds the
        launch's wall clock with a typed DeadlineExceeded) and also caps
        the client-side retry loop.
        """
        fields = {"kernel": kernel, "grid": grid, "block": block,
                  "params": params or [], "report": want_report}
        if deadline_ms:
            fields["deadlineMs"] = deadline_ms
        return self.call_with_retry("launch", tenant,
                                    deadline_ms=deadline_ms, **fields)

    def launch_async(self, tenant, kernel, grid, block, params=None,
                     deadline_ms=0):
        """Returns a ticket for poll() (revocable with cancel())."""
        fields = {"kernel": kernel, "grid": grid, "block": block,
                  "params": params or [], "async": True}
        if deadline_ms:
            fields["deadlineMs"] = deadline_ms
        return self.call_with_retry("launch", tenant,
                                    deadline_ms=deadline_ms,
                                    **fields)["ticket"]

    def poll(self, tenant, ticket, want_report=False):
        return self.call("poll", tenant, ticket=ticket, report=want_report)

    def cancel(self, tenant, ticket):
        """Revokes an async ticket.

        The response's "cancelled" is true when the revoke was
        delivered, false when the launch had already completed (a
        harmless no-op). Unknown tickets raise typed ProtocolError.
        """
        return self.call("cancel", tenant, ticket=ticket)

    def poll_until_done(self, tenant, ticket, want_report=False,
                        interval=0.0002):
        while True:
            response = self.poll(tenant, ticket, want_report)
            if response["done"]:
                return response
            time.sleep(interval)

    def report(self, tenant):
        """The tenant's full RunReport document (schemaVersion 3)."""
        return self.call("report", tenant)["report"]

    def stats(self):
        return self.call("stats")

    def trace(self, request_id):
        """The span tree the server retained for request_id.

        Every response envelope echoes its frame's "requestId"; feed a
        launch's id back here (the daemon must run with a nonzero
        --trace-sample-rate). Unknown or discarded requests answer an
        empty "spans" array, not an error.
        """
        return self.call("trace", requestId=request_id)["trace"]

    def shutdown(self):
        return self.call("shutdown")


def check(condition, what):
    if not condition:
        print("FAIL:", what, file=sys.stderr)
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser(
        description="smoke-drive a running barracuda-serve daemon")
    parser.add_argument("--socket", default="/tmp/barracuda-serve.sock")
    parser.add_argument("--tenant", default="smoke")
    parser.add_argument("--ptx", required=True,
                        help="PTX file to load and launch")
    parser.add_argument("--kernel", default=None,
                        help="kernel name (default: first in the module)")
    parser.add_argument("--grid", type=int, default=4)
    parser.add_argument("--block", type=int, default=64)
    parser.add_argument("--alloc", type=int, default=64,
                        help="bytes to allocate and pass as the only param")
    parser.add_argument("--expect-races", action="store_true")
    parser.add_argument("--deadline-ms", type=int, default=0,
                        help="wall-clock deadline for every launch "
                             "(0 = none)")
    parser.add_argument("--shutdown", action="store_true",
                        help="stop the daemon after the checks")
    args = parser.parse_args()

    with open(args.ptx) as handle:
        ptx = handle.read()

    with ServeClient(args.socket) as client:
        hello = client.hello()
        check(hello["server"] == "barracuda-serve", hello)

        kernels = client.load_module(args.tenant, ptx)
        check(kernels, "module exports no kernels")
        kernel = args.kernel or kernels[0]
        check(kernel in kernels, f"{kernel} not in {kernels}")

        buf = client.alloc(args.tenant, args.alloc)
        check(buf != 0, "alloc returned null")
        client.write_u32(args.tenant, buf, 0)
        check(client.read_u32(args.tenant, buf) == 0, "readback mismatch")

        result = client.launch(args.tenant, kernel, args.grid, args.block,
                               [buf], want_report=True,
                               deadline_ms=args.deadline_ms)
        check(result["ok"], result)
        check(not result["degraded"], "launch degraded")
        check(result["recordsLogged"] > 0, "no records logged")

        # The embedded per-request report is the schema-3 document.
        report = result["report"]
        check(report["schemaVersion"] == 3, report.get("schemaVersion"))
        races = report["races"]
        if args.expect_races:
            check(result["racesTotal"] > 0 and races,
                  "expected races, found none")
        else:
            check(result["racesTotal"] == 0 and not races,
                  f"unexpected races: {races}")

        # Async path: same kernel through ticket + poll.
        ticket = client.launch_async(args.tenant, kernel, args.grid,
                                     args.block, [buf])
        done = client.poll_until_done(args.tenant, ticket)
        check(done["ok"] and done["kernel"] == kernel, done)

        # Lifecycle: cancelling an async ticket always resolves it to a
        # terminal state — either the revoke landed (typed Cancelled)
        # or the launch beat it (the documented no-op) — and cancelling
        # an unknown ticket is typed ProtocolError, not a hang.
        ticket = client.launch_async(args.tenant, kernel, args.grid,
                                     args.block, [buf])
        cancelled = client.cancel(args.tenant, ticket)
        check(cancelled["ticket"] == ticket, cancelled)
        done = client.poll_until_done(args.tenant, ticket)
        check(done["done"], done)
        if cancelled["cancelled"]:
            check(not done["ok"] and done["launchStatus"] == "Cancelled",
                  done)
        else:
            check(done["ok"], done)
        try:
            client.cancel(args.tenant, 999999)
            check(False, "cancel of an unknown ticket did not raise")
        except ServeError as error:
            check(error.code == "ProtocolError", error)

        stats = client.stats()
        check(stats["tenants"] >= 1, stats)
        check(stats["launches"] >= 2, stats)

        print(f"ok: {kernel} <<<{args.grid},{args.block}>>> "
              f"{result['recordsLogged']} records, "
              f"{result['racesTotal']} races, "
              f"{stats['tenants']} tenant(s)")

        if args.shutdown:
            client.shutdown()


if __name__ == "__main__":
    main()
