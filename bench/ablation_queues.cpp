//===- ablation_queues.cpp - queue scaling microbenchmark (Section 4.2) ----===//
//
// google-benchmark microbenchmarks for the device-to-host queues: the
// paper found that allocating multiple queues (~1.1-1.5 per SM) achieves
// orders of magnitude better throughput than a single queue, because a
// single queue serializes all producers on its commit index. We measure
// producer-side throughput with contended producers into 1..8 queues,
// plus the raw single-producer push/drain cost.
//
//===----------------------------------------------------------------------===//

#include "trace/Queue.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace barracuda;
using namespace barracuda::trace;

namespace {

LogRecord testRecord(uint32_t Warp) {
  LogRecord Record;
  Record.Warp = Warp;
  Record.setOp(RecordOp::Write);
  Record.ActiveMask = ~0u;
  return Record;
}

/// Throughput with P producer threads (blocks) routed across Q queues,
/// one draining consumer per queue.
void contendedProducers(benchmark::State &State) {
  const unsigned NumQueues = static_cast<unsigned>(State.range(0));
  const unsigned Producers = 4;
  constexpr uint64_t PerProducer = 4096;

  for (auto _ : State) {
    QueueSet Queues(NumQueues, 1 << 12);
    std::vector<std::thread> Consumers;
    for (unsigned Q = 0; Q != NumQueues; ++Q) {
      Consumers.emplace_back([&Queues, Q] {
        EventQueue &Queue = Queues.queue(Q);
        LogRecord Batch[64];
        while (!Queue.exhausted()) {
          if (!Queue.drain(Batch, 64))
            std::this_thread::yield();
        }
      });
    }
    std::vector<std::thread> Threads;
    for (unsigned P = 0; P != Producers; ++P) {
      Threads.emplace_back([&Queues, P] {
        LogRecord Record = testRecord(P);
        for (uint64_t I = 0; I != PerProducer; ++I)
          Queues.queueForBlock(P).push(Record);
      });
    }
    for (std::thread &Thread : Threads)
      Thread.join();
    Queues.closeAll();
    for (std::thread &Thread : Consumers)
      Thread.join();
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          Producers * PerProducer);
}

/// Raw single-producer, single-consumer push+drain cost.
void pushDrain(benchmark::State &State) {
  EventQueue Queue(1 << 12);
  LogRecord Record = testRecord(0);
  LogRecord Out;
  for (auto _ : State) {
    Queue.push(Record);
    benchmark::DoNotOptimize(Queue.pop(Out));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}

/// Commit-index handoff cost with interleaved reservations from one
/// thread (models the warp-leader protocol without contention).
void reserveCommit(benchmark::State &State) {
  EventQueue Queue(1 << 12);
  LogRecord Out;
  for (auto _ : State) {
    uint64_t A = Queue.reserve();
    uint64_t B = Queue.reserve();
    Queue.slot(A) = testRecord(0);
    Queue.slot(B) = testRecord(1);
    Queue.commit(A);
    Queue.commit(B);
    Queue.pop(Out);
    Queue.pop(Out);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * 2);
}

BENCHMARK(contendedProducers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(pushDrain);
BENCHMARK(reserveCommit);

} // namespace

BENCHMARK_MAIN();
