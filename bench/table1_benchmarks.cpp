//===- table1_benchmarks.cpp - Table 1: the benchmark inventory ------------===//
//
// Regenerates Table 1: for every benchmark, the static PTX instruction
// count, the total threads of the largest kernel, the global memory
// footprint and the races BARRACUDA finds (with their memory space).
// Columns 2-4 are properties of the generated program (verified against
// the paper's numbers); the races column is *measured* by running the
// generated benchmark under the full pipeline.
//
// The measurement launch caps threads at 65536 (the generator plants
// race sites in block 0, so the count is geometry-independent); the
// table reports the paper's full geometry.
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Generator.h"

#include <cstdio>

using namespace barracuda;
using namespace barracuda::workloads;
using support::formatString;
using support::formatWithCommas;

int main() {
  std::printf("Table 1: benchmarks used with Barracuda\n\n");
  support::TableWriter Table;
  Table.addHeader({"benchmark", "origin", "static insns", "total threads",
                   "global mem MB", "races found"});
  for (unsigned Col = 2; Col <= 4; ++Col)
    Table.setRightAligned(Col);

  bool AllMatch = true;
  for (const BenchmarkSpec &Spec : table1Specs()) {
    GeneratedBenchmark Bench = generateBenchmark(Spec);

    Session S;
    if (!S.loadModule(Bench.Ptx)) {
      std::fprintf(stderr, "%s: parse error: %s\n", Spec.Name.c_str(),
                   S.error().c_str());
      return 1;
    }
    uint64_t Static = S.module().staticInstructionCount();
    uint64_t Data = S.alloc(Bench.DataBytes);
    // Reproduce the footprint column with a real device allocation.
    if (Bench.FootprintMB)
      S.alloc(Bench.FootprintMB * 1024 * 1024);

    support::Result<sim::LaunchResult> Result = S.launchKernel(
        Bench.KernelName, Bench.MeasureGrid, Bench.Block, {Data});
    if (!Result.ok()) {
      std::fprintf(stderr, "%s: launch failed: %s\n", Spec.Name.c_str(),
                   Result.status().message().c_str());
      return 1;
    }

    uint64_t FoundShared = 0, FoundGlobal = 0;
    for (const auto &Race : S.races()) {
      if (Race.Space == trace::MemSpace::Shared)
        ++FoundShared;
      else
        ++FoundGlobal;
    }

    std::string RaceCell = "-";
    if (FoundShared || FoundGlobal) {
      RaceCell.clear();
      if (FoundShared)
        RaceCell += formatString("%llu shared",
                                 static_cast<unsigned long long>(
                                     FoundShared));
      if (FoundGlobal) {
        if (!RaceCell.empty())
          RaceCell += ", ";
        RaceCell += formatString("%llu global",
                                 static_cast<unsigned long long>(
                                     FoundGlobal));
      }
    }
    if (FoundShared != Spec.RacesShared ||
        FoundGlobal != Spec.RacesGlobal) {
      RaceCell += formatString(" (expected %u sh / %u gl!)",
                               Spec.RacesShared, Spec.RacesGlobal);
      AllMatch = false;
    }

    Table.addRow({Spec.Name, Spec.Origin, formatWithCommas(Static),
                  formatWithCommas(Spec.TotalThreads),
                  formatWithCommas(Spec.GlobalMemMB), RaceCell});
  }
  Table.print();

  std::printf("\nMeasurement geometry caps threads at 65536 per launch; "
              "race sites live in block 0 and are geometry-independent.\n");
  std::printf("Races column measured by the detector: %s the paper's "
              "Table 1 counts.\n",
              AllMatch ? "matches" : "DOES NOT match");
  return AllMatch ? 0 : 1;
}
