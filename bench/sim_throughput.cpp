//===- sim_throughput.cpp - simulator hot-loop throughput -----------------===//
//
// Measures the SIMT interpreter's dynamic warp-instructions/second with
// the pre-lowered micro-op path on and off (same machine, same kernels
// — only Machine::launch's LoweredKernel argument differs). Four kernel
// classes isolate the hot-loop shapes that matter:
//
//   compute-heavy : a tight ALU loop (mad/xor/shl/and + setp/bra) — the
//                   micro-op decode win plus setp+bra fusion.
//   memory-heavy  : a load-modify-store sweep over a global buffer —
//                   the pre-resolved space/width and page-cache win.
//   divergent     : a branchy loop splitting every warp each iteration
//                   — reconvergence-stack traffic under lowering.
//   sync-heavy    : a loop crossing bar.sync twice per iteration with
//                   shared-memory traffic — barrier scheduling.
//
// A module-load microbench rides along: it times the arena/interned PTX
// front end via the RunReport's parseNanos counter and (in smoke mode)
// enforces a floor on parse throughput.
//
// Environment:
//   BARRACUDA_SIM_REPEATS   timed launches per mode (default 30)
//   BARRACUDA_BENCH_SMOKE=1 few launches, invariant checks only
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "ptx/Parser.h"
#include "sim/Lower.h"
#include "sim/Machine.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace barracuda;

namespace {

constexpr char ComputeHeavy[] = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry compute_heavy(
    .param .u64 p0
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<10>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    mov.u32 %r5, 0;
    mov.u32 %r6, 0;
LOOP:
    mad.lo.u32 %r5, %r5, 33, %r4;
    xor.b32 %r5, %r5, %r6;
    and.b32 %r7, %r5, 1023;
    add.u32 %r5, %r5, %r7;
    sub.u32 %r8, %r5, %r4;
    max.u32 %r5, %r5, %r8;
    add.u32 %r6, %r6, 1;
    setp.lt.u32 %p1, %r6, 256;
    @%p1 bra LOOP;
    cvt.u64.u32 %rd2, %r4;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r5;
    ret;
}
)";

constexpr char MemoryHeavy[] = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry memory_heavy(
    .param .u64 p0
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<10>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    mov.u32 %r6, 0;
LOOP:
    add.u32 %r7, %r4, %r6;
    and.b32 %r7, %r7, 4095;
    cvt.u64.u32 %rd2, %r7;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r8, [%rd3];
    add.u32 %r8, %r8, 1;
    st.global.u32 [%rd3], %r8;
    add.u32 %r6, %r6, 1;
    setp.lt.u32 %p1, %r6, 256;
    @%p1 bra LOOP;
    ret;
}
)";

constexpr char Divergent[] = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry divergent(
    .param .u64 p0
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<10>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    mov.u32 %r5, 0;
    mov.u32 %r6, 0;
LOOP:
    add.u32 %r7, %r1, %r6;
    and.b32 %r7, %r7, 3;
    setp.eq.u32 %p2, %r7, 0;
    @%p2 bra THEN;
    mad.lo.u32 %r5, %r5, 5, %r4;
    xor.b32 %r5, %r5, %r6;
    bra.uni JOIN;
THEN:
    add.u32 %r5, %r5, %r4;
    and.b32 %r5, %r5, 65535;
JOIN:
    add.u32 %r6, %r6, 1;
    setp.lt.u32 %p1, %r6, 256;
    @%p1 bra LOOP;
    cvt.u64.u32 %rd2, %r4;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r5;
    ret;
}
)";

constexpr char SyncHeavy[] = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry sync_heavy(
    .param .u64 p0
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<10>;
    .reg .pred %p<2>;
    .shared .align 4 .b8 tile[512];
    ld.param.u64 %rd1, [p0];
    mov.u32 %r1, %tid.x;
    mov.u64 %rd5, tile;
    cvt.u64.u32 %rd3, %r1;
    shl.b64 %rd3, %rd3, 2;
    add.u64 %rd6, %rd5, %rd3;
    mov.u32 %r6, 0;
LOOP:
    st.shared.u32 [%rd6], %r6;
    bar.sync 0;
    add.u32 %r7, %r1, 1;
    and.b32 %r7, %r7, 127;
    cvt.u64.u32 %rd3, %r7;
    shl.b64 %rd3, %rd3, 2;
    add.u64 %rd7, %rd5, %rd3;
    ld.shared.u32 %r8, [%rd7];
    bar.sync 0;
    add.u32 %r6, %r6, 1;
    setp.lt.u32 %p1, %r6, 128;
    @%p1 bra LOOP;
    ret;
}
)";

struct Scenario {
  const char *Name;
  const char *Ptx;
  const char *Kernel;
  sim::Dim3 Grid;
  sim::Dim3 Block;
  /// Fusion shapes the scenario must exercise under lowering.
  bool ExpectFusedBranches = false;
};

struct Timing {
  double Seconds = 0;
  uint64_t WarpInstructions = 0;
  bool UsedLowered = false;
  uint32_t FusedPairs = 0;
  uint32_t FusedBranches = 0;
};

void fail(const char *Scenario, const char *What) {
  std::fprintf(stderr, "FAIL [%s]: %s\n", Scenario, What);
  std::exit(1);
}

/// Runs \p S natively (no instrumentation, no logger — the pure
/// simulator hot loop) for \p Repeats timed launches after one warmup.
Timing runScenario(const Scenario &S, bool Lowered, unsigned Repeats) {
  ptx::Parser Parser(S.Ptx);
  std::unique_ptr<ptx::Module> Mod = Parser.parseModule();
  if (!Mod)
    fail(S.Name, "parse error");
  const ptx::Kernel *K = Mod->findKernel(S.Kernel);
  if (!K)
    fail(S.Name, "missing kernel");

  sim::GlobalMemory Memory;
  sim::Machine::layoutModuleGlobals(*Mod, Memory);
  sim::Machine Machine(Memory);
  sim::ParamBuilder Builder(*K);
  Builder.set(0, Memory.allocate(1 << 16));
  sim::LaunchConfig Config;
  Config.Grid = S.Grid;
  Config.Block = S.Block;

  Timing Out;
  std::unique_ptr<sim::LoweredKernel> Low;
  if (Lowered) {
    Low = sim::lowerKernel(*Mod, *K, nullptr);
    if (!Low)
      fail(S.Name, "kernel did not lower");
    Out.UsedLowered = true;
    Out.FusedPairs = Low->FusedPairs;
    Out.FusedBranches = Low->FusedBranches;
  }

  auto launchOnce = [&] {
    sim::LaunchResult Result = Machine.launch(
        *Mod, *K, nullptr, Config, Builder.bytes(), nullptr, Low.get());
    if (!Result.Ok)
      fail(S.Name, Result.Error.c_str());
    return Result.WarpInstructions;
  };
  launchOnce(); // warm the allocator, page tables and branch caches

  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Repeats; ++I)
    Out.WarpInstructions += launchOnce();
  Out.Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  return Out;
}

} // namespace

int main() {
  bool Smoke = false;
  if (const char *Env = std::getenv("BARRACUDA_BENCH_SMOKE"))
    Smoke = *Env && std::strcmp(Env, "0") != 0;
  unsigned Repeats = Smoke ? 2 : 30;
  if (const char *Env = std::getenv("BARRACUDA_SIM_REPEATS"))
    Repeats = static_cast<unsigned>(std::strtoul(Env, nullptr, 10));

  std::printf("Simulator hot-loop throughput: %u launches/mode, native "
              "(no instrumentation)%s\n\n",
              Repeats, Smoke ? " [smoke]" : "");

  Scenario Scenarios[] = {
      {"compute-heavy", ComputeHeavy, "compute_heavy", sim::Dim3(4),
       sim::Dim3(128), /*ExpectFusedBranches=*/true},
      {"memory-heavy", MemoryHeavy, "memory_heavy", sim::Dim3(4),
       sim::Dim3(128), /*ExpectFusedBranches=*/true},
      {"divergent", Divergent, "divergent", sim::Dim3(4), sim::Dim3(128),
       /*ExpectFusedBranches=*/false},
      {"sync-heavy", SyncHeavy, "sync_heavy", sim::Dim3(4),
       sim::Dim3(128), /*ExpectFusedBranches=*/false},
  };

  std::printf("%-14s %16s %16s %9s   lowering\n", "scenario",
              "legacy insn/s", "lowered insn/s", "speedup");
  for (const Scenario &S : Scenarios) {
    Timing Legacy = runScenario(S, /*Lowered=*/false, Repeats);
    Timing Lowered = runScenario(S, /*Lowered=*/true, Repeats);

    // The two paths must retire exactly the same dynamic instruction
    // stream — fusion changes scheduling slots, not the count.
    if (Legacy.WarpInstructions != Lowered.WarpInstructions)
      fail(S.Name, "dynamic instruction counts diverge");
    if (!Lowered.UsedLowered)
      fail(S.Name, "micro-op path did not engage");
    if (S.ExpectFusedBranches && Lowered.FusedBranches == 0)
      fail(S.Name, "expected setp+bra fusion");
    if (Lowered.FusedPairs == 0 && Lowered.FusedBranches == 0)
      fail(S.Name, "no fusion at all");

    double LegacyRate = Legacy.WarpInstructions / Legacy.Seconds;
    double LoweredRate = Lowered.WarpInstructions / Lowered.Seconds;
    std::printf("%-14s %16.0f %16.0f %8.2fx   %u pairs, %u setp+bra\n",
                S.Name, LegacyRate, LoweredRate, LoweredRate / LegacyRate,
                Lowered.FusedPairs, Lowered.FusedBranches);
  }

  std::printf("\nlegacy = per-instruction interpreter (--legacy-sim); "
              "both paths retire identical instruction streams.\n");

  // Module-load microbench: the arena/interned front end, measured by
  // the session's parseNanos counter (the same number RunReport
  // serializes in its "instrumentation" section).
  {
    SessionOptions Options;
    Options.Instrument = false;
    Options.Profile = false;
    uint64_t BestNanos = ~0ull;
    unsigned Loads = Smoke ? 3 : 20;
    for (unsigned I = 0; I != Loads; ++I) {
      Session S(Options);
      if (!S.loadModule(ComputeHeavy))
        fail("module-load", "parse failed");
      uint64_t Buf = S.alloc(1 << 16);
      if (!S.launchKernel("compute_heavy", sim::Dim3(1), sim::Dim3(32),
                          {Buf})
               .ok())
        fail("module-load", "launch failed");
      uint64_t Nanos = S.report().ParseNanos;
      if (Nanos == 0)
        fail("module-load", "ParseNanos not populated");
      if (Nanos < BestNanos)
        BestNanos = Nanos;
    }
    double BytesPerSec =
        std::strlen(ComputeHeavy) / (BestNanos * 1e-9);
    std::printf("\nmodule load (best of %u): %llu ns for %zu bytes of "
                "PTX (%.1f MB/s front end)\n",
                Loads, static_cast<unsigned long long>(BestNanos),
                std::strlen(ComputeHeavy), BytesPerSec / 1e6);
    // Floor well under any healthy run (the arena front end parses
    // tens of MB/s); catches an accidental quadratic or a lost arena.
    if (Smoke && BytesPerSec < 1e6)
      fail("module-load",
           "front end parses below 1 MB/s — parse-time regression");
  }
  return 0;
}
