//===- engine_relaunch.cpp - persistent-engine relaunch overhead -----------===//
//
// Measures the fixed per-launch cost of the detection pipeline for many
// back-to-back launches of a small kernel — the regime where the seed
// reproduction's create-everything-per-launch design hurt most. Two
// configurations run the same kernel the same number of times:
//
//   per-launch pool : the seed pipeline — a fresh QueueSet (ring
//                     allocation) plus HostDetector thread spawn/join
//                     for every launch.
//   persistent pool : a Session over the runtime Engine — queues and
//                     detector threads created once, launches leased as
//                     epochs; idle workers park between launches.
//
// Environment: BARRACUDA_RELAUNCH_COUNT sets the launch count
// (default 100).
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "detector/Host.h"
#include "instrument/Instrumenter.h"
#include "ptx/Parser.h"
#include "sim/Logger.h"
#include "sim/Machine.h"
#include "trace/Queue.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace barracuda;

namespace {

const char *HistogramPtx = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry histogram(
    .param .u64 bins
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<8>;
    ld.param.u64 %rd1, [bins];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    and.b32 %r5, %r4, 7;
    cvt.u64.u32 %rd2, %r5;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    atom.global.add.u32 %r6, [%rd3], 1;
    ret;
}
)";

constexpr unsigned NumQueues = 4;
constexpr size_t QueueCapacity = 1 << 14;
const sim::Dim3 Grid(4), Block(64);

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// The seed path: module state built once, but every launch allocates a
/// QueueSet and spawns/joins a HostDetector pool.
double runPerLaunchPool(unsigned Launches) {
  ptx::Parser Parser(HistogramPtx);
  std::unique_ptr<ptx::Module> Mod = Parser.parseModule();
  if (!Mod) {
    std::fprintf(stderr, "parse error: %s\n", Parser.error().c_str());
    std::exit(1);
  }
  instrument::InstrumenterOptions InstrOpts;
  instrument::ModuleInstrumentation Instr =
      instrument::instrumentModule(*Mod, InstrOpts);

  sim::GlobalMemory Memory;
  sim::Machine::layoutModuleGlobals(*Mod, Memory);
  sim::Machine Machine(Memory);
  ptx::Kernel &K = Mod->Kernels.front();
  uint64_t Bins = Memory.allocate(64);
  sim::ParamBuilder Builder(K);
  Builder.set(0, Bins);

  sim::LaunchConfig Config;
  Config.Grid = Grid;
  Config.Block = Block;

  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Launches; ++I) {
    trace::QueueSet Queues(NumQueues, QueueCapacity);
    detector::DetectorOptions DetOpts;
    DetOpts.Hier = sim::ThreadHierarchy(Config);
    detector::SharedDetectorState State(DetOpts);
    detector::HostDetector Host(Queues, State);
    Host.start();
    sim::QueueLogger Logger(Queues);
    sim::LaunchResult Result = Machine.launch(
        *Mod, K, &Instr.Kernels.front(), Config, Builder.bytes(), &Logger);
    Queues.closeAll();
    Host.join();
    if (!Result.Ok) {
      std::fprintf(stderr, "launch failed: %s\n", Result.Error.c_str());
      std::exit(1);
    }
  }
  return secondsSince(Start);
}

/// The runtime path: one Session, whose Engine owns the queues and the
/// detector pool for all launches.
double runPersistentPool(unsigned Launches) {
  SessionOptions Options;
  Options.NumQueues = NumQueues;
  Options.QueueCapacity = QueueCapacity;
  Session S(Options);
  if (!S.loadModule(HistogramPtx)) {
    std::fprintf(stderr, "parse error: %s\n", S.error().c_str());
    std::exit(1);
  }
  uint64_t Bins = S.alloc(64);

  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Launches; ++I) {
    support::Result<sim::LaunchResult> Result =
        S.launchKernel("histogram", Grid, Block, {Bins});
    if (!Result.ok()) {
      std::fprintf(stderr, "launch failed: %s\n", Result.status().message().c_str());
      std::exit(1);
    }
  }
  double Elapsed = secondsSince(Start);
  if (S.engine().threadsEverStarted() != NumQueues) {
    std::fprintf(stderr, "pool was rebuilt mid-run\n");
    std::exit(1);
  }
  return Elapsed;
}

} // namespace

int main() {
  unsigned Launches = 100;
  bool Smoke = false;
  if (const char *Env = std::getenv("BARRACUDA_BENCH_SMOKE"))
    Smoke = *Env && *Env != '0';
  if (Smoke)
    Launches = 5;
  if (const char *Env = std::getenv("BARRACUDA_RELAUNCH_COUNT"))
    Launches = static_cast<unsigned>(std::strtoul(Env, nullptr, 10));

  std::printf("Per-launch pipeline cost over %u back-to-back launches "
              "(histogram, grid 4 x block 64, %u queues)%s\n\n",
              Launches, NumQueues, Smoke ? " [smoke]" : "");

  // Warm both paths (thread stacks, allocator, code) before measuring.
  if (!Smoke) {
    runPerLaunchPool(4);
    runPersistentPool(4);
  }

  double PerLaunchPool = runPerLaunchPool(Launches);
  double Persistent = runPersistentPool(Launches);

  double PerLaunchUs = 1e6 * PerLaunchPool / Launches;
  double PersistentUs = 1e6 * Persistent / Launches;
  std::printf("per-launch pool : %8.3f s total, %9.1f us/launch\n",
              PerLaunchPool, PerLaunchUs);
  std::printf("persistent pool : %8.3f s total, %9.1f us/launch\n",
              Persistent, PersistentUs);
  std::printf("\nspeedup: %.2fx lower per-launch overhead with the "
              "persistent engine\n",
              PerLaunchUs / PersistentUs);
  return 0;
}
