//===- fig10_overhead.cpp - Figure 10: runtime overhead --------------------===//
//
// Regenerates Figure 10: the performance overhead of running each
// benchmark under BARRACUDA (instrument + log + detect), normalized to
// native execution of the same program on the same simulated device.
// Like the paper's figure, the series is plotted on a log axis (here an
// ASCII log-scale bar). Absolute magnitudes differ from the paper —
// their native baseline is silicon while ours is an interpreter, which
// compresses the ratio — but the ordering pressure is the same: the
// benchmarks with the highest memory-record density (dwt2d, dxtc, the
// CUB kernels) pay the most.
//
// Environment: BARRACUDA_OVERHEAD_THREADS caps the measurement geometry
// (default 16384 threads).
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "runtime/Engine.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Generator.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace barracuda;
using namespace barracuda::workloads;
using support::formatString;

namespace {

/// One detector pool for every instrumented measurement: sessions come
/// and go per benchmark, the engine's threads persist.
runtime::Engine &benchEngine() {
  static runtime::Engine Engine;
  return Engine;
}

double runOnce(const GeneratedBenchmark &Bench, bool Instrumented) {
  SessionOptions Options;
  Options.Instrument = Instrumented;
  if (Instrumented)
    Options.SharedEngine = &benchEngine();
  Session S(Options);
  if (!S.loadModule(Bench.Ptx)) {
    std::fprintf(stderr, "parse error: %s\n", S.error().c_str());
    std::exit(1);
  }
  uint64_t Data = S.alloc(Bench.DataBytes);
  auto Start = std::chrono::steady_clock::now();
  support::Result<sim::LaunchResult> Result = S.launchKernel(
      Bench.KernelName, Bench.MeasureGrid, Bench.Block, {Data});
  auto End = std::chrono::steady_clock::now();
  if (!Result.ok()) {
    std::fprintf(stderr, "launch failed: %s\n", Result.status().message().c_str());
    std::exit(1);
  }
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main() {
  uint64_t MaxThreads = 16384;
  if (const char *Env = std::getenv("BARRACUDA_OVERHEAD_THREADS"))
    MaxThreads = std::strtoull(Env, nullptr, 10);

  std::printf("Figure 10: Barracuda overhead normalized to native "
              "execution (log scale)\n\n");

  support::TableWriter Table;
  Table.addHeader({"benchmark", "native s", "barracuda s", "overhead",
                   "log-scale bar"});
  Table.setRightAligned(1);
  Table.setRightAligned(2);
  Table.setRightAligned(3);

  GeneratorOptions GenOptions;
  GenOptions.MaxMeasureThreads = MaxThreads;

  double MaxOverhead = 0, MinOverhead = 1e9;
  std::string Heaviest, Lightest;
  for (const BenchmarkSpec &Spec : table1Specs()) {
    GeneratedBenchmark Bench = generateBenchmark(Spec, GenOptions);
    // Warm once (page-table and allocator warmup), then measure.
    double Native = runOnce(Bench, /*Instrumented=*/false);
    Native = std::min(Native, runOnce(Bench, false));
    double Detected = runOnce(Bench, /*Instrumented=*/true);

    double Overhead = Detected / std::max(Native, 1e-9);
    if (Overhead > MaxOverhead) {
      MaxOverhead = Overhead;
      Heaviest = Spec.Name;
    }
    if (Overhead < MinOverhead) {
      MinOverhead = Overhead;
      Lightest = Spec.Name;
    }
    std::string Bar(
        static_cast<size_t>(std::max(0.0, 8.0 * std::log10(Overhead) + 1)),
        '#');
    Table.addRow({Spec.Name, formatString("%.4f", Native),
                  formatString("%.4f", Detected),
                  formatString("%.1fx", Overhead), Bar});
  }
  Table.print();

  std::printf("\nHeaviest: %s (%.1fx); lightest: %s (%.1fx).\n",
              Heaviest.c_str(), MaxOverhead, Lightest.c_str(),
              MinOverhead);
  std::printf("Paper: overheads range from ~10x to 3700x (dwt2d) against "
              "a silicon baseline; the interpreter baseline compresses "
              "the ratios but preserves the record-density ordering.\n");
  return 0;
}
