//===- fig9_instrumentation.cpp - Figure 9: instrumented fraction ----------===//
//
// Regenerates Figure 9: for every Table 1 benchmark, the percentage of
// static PTX instructions instrumented by BARRACUDA before (left bar)
// and after (right bar) the intra-basic-block redundant-logging pruning
// optimization. Rendered as an ASCII bar chart plus the raw series.
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "instrument/Instrumenter.h"
#include "ptx/Parser.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Generator.h"

#include <cstdio>

using namespace barracuda;
using namespace barracuda::workloads;
using support::formatString;

int main() {
  std::printf("Figure 9: %% of static PTX instructions instrumented, "
              "before and after instrumentation pruning\n\n");

  support::TableWriter Table;
  Table.addHeader({"benchmark", "static", "unoptimized", "optimized",
                   "dyn saved", "bars (u=unoptimized, #=optimized)"});
  for (unsigned Col = 1; Col <= 4; ++Col)
    Table.setRightAligned(Col);

  workloads::GeneratorOptions GenOptions;
  GenOptions.MaxMeasureThreads = 4096;

  double MaxUnopt = 0;
  for (const BenchmarkSpec &Spec : table1Specs()) {
    GeneratedBenchmark Bench = generateBenchmark(Spec, GenOptions);
    std::unique_ptr<ptx::Module> Mod = ptx::parseOrDie(Bench.Ptx);
    instrument::InstrumenterOptions Options;
    instrument::ModuleInstrumentation Instr =
        instrument::instrumentModule(*Mod, Options);
    instrument::InstrumentationStats Stats = Instr.totalStats();

    double Unopt = 100.0 * Stats.unoptimizedFraction();
    double Opt = 100.0 * Stats.optimizedFraction();
    MaxUnopt = std::max(MaxUnopt, Unopt);

    // Dynamic effect of pruning: fraction of would-be records elided at
    // runtime (RedCard-style dynamic savings).
    Session S;
    std::string DynSaved = "-";
    if (S.loadModule(Bench.Ptx)) {
      uint64_t Data = S.alloc(Bench.DataBytes);
      support::Result<sim::LaunchResult> Run = S.launchKernel(
          Bench.KernelName, Bench.MeasureGrid, Bench.Block, {Data});
      if (Run.ok() && Run.value().RecordsLogged + Run.value().RecordsPruned)
        DynSaved = formatString(
            "%.1f%%", 100.0 * static_cast<double>(Run.value().RecordsPruned) /
                          static_cast<double>(Run.value().RecordsLogged +
                                              Run.value().RecordsPruned));
    }

    std::string Bars(static_cast<size_t>(Opt), '#');
    Bars += std::string(
        static_cast<size_t>(std::max(0.0, Unopt - Opt)), 'u');

    Table.addRow({Spec.Name,
                  formatString("%llu", static_cast<unsigned long long>(
                                           Stats.StaticInsns)),
                  formatString("%.1f%%", Unopt),
                  formatString("%.1f%%", Opt), DynSaved, Bars});
  }
  Table.print();

  std::printf("\nShape check (paper): arithmetic dominates GPU kernels, "
              "so Barracuda never instruments more than half the static "
              "instructions (max here: %.1f%%), and pruning removes the "
              "redundant same-address logging.\n",
              MaxUnopt);
  return MaxUnopt <= 50.0 ? 0 : 1;
}
