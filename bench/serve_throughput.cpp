//===- serve_throughput.cpp - detection-as-a-service throughput -------------===//
//
// Drives an in-process barracuda-serve Server over its real unix socket
// with N concurrent clients (one tenant each), all blocking-launching
// the safe histogram kernel, and reports launches/sec plus p50/p99
// request latency per client count. The protocol, connection threads,
// tenant locking and the shared engine's epoch multiplexing are all on
// the measured path — this is the serving layer's end-to-end cost, not
// the detector's.
//
// Writes BENCH_serve_throughput.json (one fresh document per run) into
// the current directory.
//
// Env:
//   BARRACUDA_BENCH_SMOKE=1   few rounds, invariant checks only
//   BARRACUDA_SERVE_ROUNDS=N  override launches per client
//
// Invariants enforced in every mode: every launch completes ok and
// undegraded, the safe kernel stays race-free for every tenant, and a
// racy control launch still produces races through the full stack.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"
#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace barracuda;
using support::json::Value;

namespace {

const char *HistogramModule = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry hist_racy(
    .param .u64 bins
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<8>;
    ld.param.u64 %rd1, [bins];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    and.b32 %r5, %r4, 7;
    cvt.u64.u32 %rd2, %r5;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r6, [%rd3];
    add.u32 %r6, %r6, 1;
    st.global.u32 [%rd3], %r6;
    ret;
}

.visible .entry hist_safe(
    .param .u64 bins
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<8>;
    ld.param.u64 %rd1, [bins];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    and.b32 %r5, %r4, 7;
    cvt.u64.u32 %rd2, %r5;
    shl.b64 %rd2, %rd2, 2;
    add.u64 %rd3, %rd1, %rd2;
    atom.global.add.u32 %r6, [%rd3], 1;
    ret;
}
)";

void fail(const char *What) {
  std::fprintf(stderr, "FAIL: %s\n", What);
  std::exit(1);
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t percentileMicros(std::vector<double> &SecondsSorted, double Q) {
  if (SecondsSorted.empty())
    return 0;
  size_t Index = static_cast<size_t>(
      Q * static_cast<double>(SecondsSorted.size() - 1) + 0.5);
  return static_cast<uint64_t>(SecondsSorted[Index] * 1e6);
}

struct Point {
  unsigned Clients = 0;
  double LaunchesPerSec = 0;
  double RecordsPerSec = 0;
  uint64_t P50Micros = 0;
  uint64_t P99Micros = 0;
};

/// Launches/sec for one fresh server at \p SampleRate, \p Clients
/// concurrent tenants, \p Rounds blocking launches each. Used for the
/// tracing-overhead A/B gate.
double measureThroughput(double SampleRate, unsigned Clients,
                         unsigned Rounds) {
  serve::ServerOptions Options;
  Options.SocketPath = support::formatString(
      "/tmp/barracuda-serve-bench-ab-%d-%u.sock", static_cast<int>(getpid()),
      static_cast<unsigned>(SampleRate * 1000));
  Options.NumQueues = 4;
  Options.Tenant.MaxInFlight = 0;
  Options.TraceSampleRate = SampleRate;
  serve::Server Server(std::move(Options));
  if (!Server.start().ok())
    fail("A/B server did not start");

  std::vector<std::string> Errors(Clients);
  double Begin = nowSeconds();
  std::vector<std::thread> Drivers;
  for (unsigned I = 0; I != Clients; ++I)
    Drivers.emplace_back([&, I] {
      std::string Tenant = support::formatString("ab-%u", I);
      serve::Client C;
      if (!C.connect(Server.socketPath()).ok() ||
          !C.loadModule(Tenant, HistogramModule).ok()) {
        Errors[I] = "setup failed";
        return;
      }
      uint64_t Bins = C.alloc(Tenant, 64).valueOr(0);
      for (unsigned Round = 0; Round != Rounds; ++Round) {
        support::Result<Value> Launch = C.launch(
            Tenant, "hist_safe", sim::Dim3(2), sim::Dim3(64), {Bins});
        if (!Launch.ok() || !Launch.value().getBool("ok")) {
          Errors[I] = "launch failed: " + Launch.status().describe();
          return;
        }
      }
    });
  for (std::thread &T : Drivers)
    T.join();
  double Elapsed = nowSeconds() - Begin;
  for (unsigned I = 0; I != Clients; ++I)
    if (!Errors[I].empty()) {
      std::fprintf(stderr, "FAIL [A/B rate=%.2f, %u]: %s\n", SampleRate, I,
                   Errors[I].c_str());
      std::exit(1);
    }
  Server.stop();
  return static_cast<double>(Clients) * Rounds / Elapsed;
}

} // namespace

int main() {
  bool Smoke = false;
  if (const char *Env = std::getenv("BARRACUDA_BENCH_SMOKE"))
    Smoke = *Env && std::strcmp(Env, "0") != 0;
  unsigned Rounds = Smoke ? 20 : 200;
  if (const char *Env = std::getenv("BARRACUDA_SERVE_ROUNDS"))
    Rounds = static_cast<unsigned>(std::strtoul(Env, nullptr, 10));
  unsigned HostCores = std::thread::hardware_concurrency();

  serve::ServerOptions Options;
  Options.SocketPath = support::formatString(
      "/tmp/barracuda-serve-bench-%d.sock", static_cast<int>(getpid()));
  Options.NumQueues = 4;
  Options.Tenant.MaxInFlight = 0; // blocking clients self-limit
  serve::Server Server(std::move(Options));
  if (!Server.start().ok())
    fail("server did not start");

  std::printf("serve throughput: %u launches/client over %s, %u host "
              "cores%s\n\n",
              Rounds, Server.socketPath().c_str(), HostCores,
              Smoke ? " [smoke]" : "");

  // Control: the full stack still detects races (not measured).
  {
    serve::Client C;
    if (!C.connect(Server.socketPath()).ok() ||
        !C.loadModule("control", HistogramModule).ok())
      fail("control tenant setup");
    uint64_t Bins = C.alloc("control", 64).valueOr(0);
    support::Result<Value> Racy = C.launch(
        "control", "hist_racy", sim::Dim3(1), sim::Dim3(64), {Bins});
    if (!Racy.ok() || !Racy.value().getBool("ok"))
      fail("control launch");
    if (!Racy.value().getU64("racesTotal"))
      fail("racy control launch found no races through the daemon");
  }

  const unsigned ClientCounts[] = {1, 2, 4, 8};
  std::vector<Point> Points;
  std::printf("  %8s %14s %14s %10s %10s\n", "clients", "launches/s",
              "records/s", "p50 us", "p99 us");

  for (unsigned Clients : ClientCounts) {
    if (Smoke && Clients > 4)
      continue;
    std::vector<std::vector<double>> Latencies(Clients);
    std::vector<uint64_t> Records(Clients, 0);
    std::vector<std::string> Errors(Clients);

    double Begin = nowSeconds();
    std::vector<std::thread> Drivers;
    for (unsigned I = 0; I != Clients; ++I)
      Drivers.emplace_back([&, I, Clients] {
        std::string Tenant =
            support::formatString("bench-%u-%u", Clients, I);
        serve::Client C;
        if (!C.connect(Server.socketPath()).ok() ||
            !C.loadModule(Tenant, HistogramModule).ok()) {
          Errors[I] = "setup failed";
          return;
        }
        uint64_t Bins = C.alloc(Tenant, 64).valueOr(0);
        Latencies[I].reserve(Rounds);
        for (unsigned Round = 0; Round != Rounds; ++Round) {
          double Start = nowSeconds();
          support::Result<Value> Launch = C.launch(
              Tenant, "hist_safe", sim::Dim3(2), sim::Dim3(64), {Bins});
          Latencies[I].push_back(nowSeconds() - Start);
          if (!Launch.ok() || !Launch.value().getBool("ok")) {
            Errors[I] = "launch failed: " + Launch.status().describe();
            return;
          }
          if (Launch.value().getBool("degraded")) {
            Errors[I] = "launch degraded";
            return;
          }
          if (Launch.value().getU64("racesTotal")) {
            Errors[I] = "safe kernel raced";
            return;
          }
          Records[I] += Launch.value().getU64("recordsLogged");
        }
      });
    for (std::thread &T : Drivers)
      T.join();
    double Elapsed = nowSeconds() - Begin;

    for (unsigned I = 0; I != Clients; ++I)
      if (!Errors[I].empty()) {
        std::fprintf(stderr, "FAIL [clients=%u, %u]: %s\n", Clients, I,
                     Errors[I].c_str());
        std::exit(1);
      }

    std::vector<double> All;
    uint64_t TotalRecords = 0;
    for (unsigned I = 0; I != Clients; ++I) {
      All.insert(All.end(), Latencies[I].begin(), Latencies[I].end());
      TotalRecords += Records[I];
    }
    std::sort(All.begin(), All.end());

    Point P;
    P.Clients = Clients;
    P.LaunchesPerSec =
        static_cast<double>(Clients) * Rounds / Elapsed;
    P.RecordsPerSec = static_cast<double>(TotalRecords) / Elapsed;
    P.P50Micros = percentileMicros(All, 0.50);
    P.P99Micros = percentileMicros(All, 0.99);
    Points.push_back(P);
    std::printf("  %8u %14.0f %14.0f %10llu %10llu\n", Clients,
                P.LaunchesPerSec, P.RecordsPerSec,
                static_cast<unsigned long long>(P.P50Micros),
                static_cast<unsigned long long>(P.P99Micros));
  }

  Server.stop();

  // Tracing-overhead gate: the default head-sampling rate must cost at
  // most 2% of serve throughput versus tracing fully off. Alternate
  // three A/B pairs and compare the best of each (best-of denoises the
  // scheduler; the gate gets a small grace on top because wall-clock
  // noise at this scale exceeds the real recorder cost).
  double BaselineBest = 0, SampledBest = 0;
  const unsigned AbRounds = std::max(Rounds, 100u);
  for (unsigned Pass = 0; Pass != 3; ++Pass) {
    BaselineBest =
        std::max(BaselineBest, measureThroughput(0.0, 2, AbRounds));
    SampledBest =
        std::max(SampledBest, measureThroughput(0.05, 2, AbRounds));
  }
  double OverheadPct =
      BaselineBest > 0
          ? (1.0 - SampledBest / BaselineBest) * 100.0
          : 0.0;
  std::printf("\n  trace overhead @ default sample rate: %.2f%% "
              "(baseline %.0f/s, sampled %.0f/s)\n",
              OverheadPct, BaselineBest, SampledBest);
  if (OverheadPct > 2.0)
    fail("default-rate tracing costs more than 2% of serve throughput");

  support::json::Writer Json;
  Json.beginObject();
  Json.key("bench").value(std::string("serve_throughput"));
  Json.key("description")
      .value(std::string(
          "barracuda-serve end-to-end over its unix socket: concurrent "
          "blocking clients, one tenant each, safe histogram launches"));
  Json.key("units").value(std::string("launches/sec"));
  Json.key("hostCores").value(static_cast<uint64_t>(HostCores));
  Json.key("roundsPerClient").value(static_cast<uint64_t>(Rounds));
  Json.key("smoke").value(Smoke);
  Json.key("traceOverheadPct").value(OverheadPct);
  Json.key("points").beginArray();
  for (const Point &P : Points) {
    Json.beginObject();
    Json.key("clients").value(static_cast<uint64_t>(P.Clients));
    Json.key("launchesPerSec").value(P.LaunchesPerSec);
    Json.key("recordsPerSec").value(P.RecordsPerSec);
    Json.key("p50Micros").value(P.P50Micros);
    Json.key("p99Micros").value(P.P99Micros);
    Json.endObject();
  }
  Json.endArray();
  Json.endObject();

  std::FILE *Out = std::fopen("BENCH_serve_throughput.json", "w");
  if (Out) {
    std::fputs(Json.str().c_str(), Out);
    std::fputc('\n', Out);
    std::fclose(Out);
    std::printf("\nwrote BENCH_serve_throughput.json\n");
  }
  return 0;
}
