//===- ablation_warpsize.cpp - latent bugs under simulated warp widths -----===//
//
// Implements the extension the paper sketches in Section 3.1: "in future
// we could simulate the behavior of smaller/larger warps to find
// additional latent bugs". Runs warp-width-sensitive programs from the
// concurrency suite at simulated warp sizes 32/16/8/4 and reports where
// new races appear — exactly the latent dependence on 32-wide lockstep
// (and on the SIMT serialization order) that portable CUDA code must
// avoid.
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "suite/Suite.h"
#include "support/Format.h"
#include "support/TableWriter.h"

#include <cstdio>

using namespace barracuda;

namespace {

struct Outcome {
  bool Ok = false;
  size_t Races = 0;
};

Outcome runAt(const suite::SuiteProgram &Program, uint32_t WarpSize) {
  SessionOptions Options;
  Options.WarpSize = WarpSize;
  Session S(Options);
  Outcome Result;
  if (!S.loadModule(Program.Ptx))
    return Result;
  std::vector<uint64_t> Params;
  for (const auto &Spec : Program.Params) {
    if (Spec.K == suite::ParamSpec::Kind::Value) {
      Params.push_back(Spec.Value);
      continue;
    }
    uint64_t Addr = S.alloc(Spec.BufferBytes);
    if (Spec.HasInitWord)
      S.writeU32(Addr, Spec.InitWord);
    Params.push_back(Addr);
  }
  support::Result<sim::LaunchResult> Launch = S.launchKernel(Program.KernelName,
                                            Program.Grid, Program.Block,
                                            Params);
  Result.Ok = Launch.ok();
  Result.Races = S.races().size() + S.barrierErrors().size();
  return Result;
}

} // namespace

int main() {
  std::printf("Simulated warp widths (Section 3.1's future-work "
              "extension): distinct races + barrier errors per width\n\n");

  // Programs whose verdicts are width-sensitive (warp-synchronous or
  // divergence-dependent) plus width-robust controls.
  static const char *const Programs[] = {
      "w_lockstep_wr",           // relies on 32-wide lockstep
      "b_missing_barrier_stencil", // racy at any width
      "s_producer_consumer_barrier", // barrier-synchronized: robust
      "w_branch_order_ww",       // branch-ordering race at any width
      "w_nested_disjoint",       // disjoint: robust
      "g_disjoint_slots",        // robust
      "b_divergent_barrier",     // barrier divergence at any width
  };

  support::TableWriter Table;
  Table.addHeader({"program", "ws=32", "ws=16", "ws=8", "ws=4",
                   "latent bug?"});

  unsigned LatentFound = 0;
  for (const char *Name : Programs) {
    const suite::SuiteProgram *Program = suite::findSuiteProgram(Name);
    if (!Program) {
      std::fprintf(stderr, "missing program %s\n", Name);
      return 1;
    }
    std::vector<std::string> Row = {Name};
    size_t At32 = 0;
    bool Latent = false;
    for (uint32_t WarpSize : {32u, 16u, 8u, 4u}) {
      Outcome Result = runAt(*Program, WarpSize);
      if (!Result.Ok) {
        Row.push_back("fail");
        continue;
      }
      if (WarpSize == 32)
        At32 = Result.Races;
      else if (Result.Races > At32)
        Latent = true;
      Row.push_back(support::formatString(
          "%zu", Result.Races));
    }
    Row.push_back(Latent ? "YES - width-dependent" : "-");
    LatentFound += Latent;
    Table.addRow(Row);
  }
  Table.print();

  std::printf("\n%u program(s) are quiet at the hardware warp width but "
              "race under narrower lockstep: their correctness silently "
              "depends on a 32-thread warp.\n",
              LatentFound);
  return 0;
}
