//===- detector_hotpath.cpp - detector hot-path throughput ----------------===//
//
// Measures QueueProcessor memory-record throughput with the coalesced
// hot path on and off (same rules, same verdicts — DetectorOptions::
// HotPath only switches the per-byte reference loop against the
// run-coalesced fast paths). Synthetic record streams go straight into
// one QueueProcessor, so the numbers isolate the detector from the
// simulator and queue transport:
//
//   coalesced-global : full-warp 4-byte accesses at consecutive
//                      addresses (the CUDA common case) over per-warp
//                      disjoint global buffers — runs coalesce, granule
//                      locks amortize, broadcasts fire.
//   strided-global   : 128-byte lane stride — every lane is its own
//                      run; measures fast-path overhead when coalescing
//                      never applies.
//   conflicting-atom : every lane hits the same 4-byte counter with an
//                      atomic — maximal contention on one granule,
//                      no coalescing, no races (atomics don't race).
//   coalesced-shared : the coalesced pattern against block-shared
//                      memory (no spinlocks either way).
//
// Environment:
//   BARRACUDA_HOTPATH_RECORDS  records per scenario (default 20000)
//   BARRACUDA_BENCH_SMOKE=1    few records, invariant checks only
//
//===----------------------------------------------------------------------===//

#include "detector/Detector.h"
#include "obs/Exporter.h"
#include "trace/Record.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace barracuda;
using namespace barracuda::detector;
using trace::LogRecord;
using trace::MemSpace;
using trace::RecordOp;
using trace::WarpSize;

namespace {

constexpr uint32_t WarpsPerBlock = 2;
constexpr uint32_t NumWarps = 4; // two blocks of two warps
constexpr uint64_t GlobalBase = 0x10000;
constexpr uint64_t WarpRegion = 1 << 16; // one shadow page per warp

sim::ThreadHierarchy hierarchy() {
  sim::ThreadHierarchy Hier;
  Hier.ThreadsPerBlock = WarpsPerBlock * WarpSize;
  Hier.WarpsPerBlock = WarpsPerBlock;
  return Hier;
}

struct Scenario {
  const char *Name;
  std::vector<LogRecord> Records;
  bool ExpectCoalesced = false;
};

LogRecord memRecord(RecordOp Op, uint32_t Warp, MemSpace Space,
                    uint16_t Size, uint64_t Base, uint64_t LaneStride) {
  LogRecord Record = trace::makeMemRecord(Op, Warp, /*Pc=*/1, Space, Size,
                                          /*ActiveMask=*/~0u);
  for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
    Record.Addr[Lane] = Base + Lane * LaneStride;
  return Record;
}

/// Full-warp 4-byte accesses sweeping per-warp disjoint buffers;
/// alternates writes and reads like a compute kernel's load/store pairs.
Scenario coalesced(unsigned Count, MemSpace Space) {
  Scenario S;
  S.Name = Space == MemSpace::Global ? "coalesced-global"
                                     : "coalesced-shared";
  S.ExpectCoalesced = true;
  uint64_t Region = Space == MemSpace::Global ? WarpRegion : 4096;
  uint64_t Sweep = Region / (WarpSize * 4);
  for (unsigned I = 0; I != Count; ++I) {
    uint32_t Warp = I % NumWarps;
    uint64_t Base = (Space == MemSpace::Global ? GlobalBase : 0) +
                    Warp * Region + (I / NumWarps % Sweep) * WarpSize * 4;
    RecordOp Op = (I / NumWarps) % 2 ? RecordOp::Read : RecordOp::Write;
    S.Records.push_back(memRecord(Op, Warp, Space, 4, Base, 4));
  }
  return S;
}

/// 128-byte lane stride: no two lanes are contiguous, so every lane is
/// a singleton run and several shadow pages are live at once.
Scenario strided(unsigned Count) {
  Scenario S;
  S.Name = "strided-global";
  for (unsigned I = 0; I != Count; ++I) {
    uint32_t Warp = I % NumWarps;
    uint64_t Base = GlobalBase + Warp * (WarpRegion * 2) + (I % 16) * 4;
    S.Records.push_back(
        memRecord(RecordOp::Write, Warp, MemSpace::Global, 4, Base, 128));
  }
  return S;
}

/// Every lane of every warp atomically bumps the same counter.
Scenario conflicting(unsigned Count) {
  Scenario S;
  S.Name = "conflicting-atom";
  for (unsigned I = 0; I != Count; ++I)
    S.Records.push_back(memRecord(RecordOp::Atom, I % NumWarps,
                                  MemSpace::Global, 4, GlobalBase, 0));
  return S;
}

struct RunResult {
  double Seconds = 0;
  size_t Races = 0;
  HotPathStats Stats;
};

RunResult runScenario(const Scenario &S, bool HotPath,
                      bool CollectStats = true,
                      bool ProfileRules = false,
                      const char *MetricsDir = nullptr) {
  DetectorOptions Opts;
  Opts.Hier = hierarchy();
  Opts.HotPath = HotPath;
  Opts.CollectStats = CollectStats;
  Opts.ProfileRules = ProfileRules;
  SharedDetectorState State(Opts);
  QueueProcessor Processor(State);

  // Full observability load: a live exporter scraping the detector's
  // registry as fast as it can while records are processed.
  obs::Exporter *Exporter = nullptr;
  obs::Exporter ExporterStorage([&] {
    obs::ExporterOptions ExpOpts;
    ExpOpts.Dir = MetricsDir ? MetricsDir : ".";
    ExpOpts.IntervalMs = 50; // the acceptance test's live-scrape rate
    return ExpOpts;
  }());
  if (MetricsDir) {
    ExporterStorage.addRegistry(&State.metrics());
    if (ExporterStorage.start().ok())
      Exporter = &ExporterStorage;
  }

  auto Start = std::chrono::steady_clock::now();
  for (const LogRecord &Record : S.Records)
    Processor.process(Record);
  RunResult Result;
  Result.Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  Processor.finish();
  if (Exporter)
    Exporter->stop();
  Result.Races = State.Reporter.races().size();
  Result.Stats = State.hotPathStats();
  return Result;
}

void fail(const char *Scenario, const char *What) {
  std::fprintf(stderr, "FAIL [%s]: %s\n", Scenario, What);
  std::exit(1);
}

} // namespace

int main() {
  bool Smoke = false;
  if (const char *Env = std::getenv("BARRACUDA_BENCH_SMOKE"))
    Smoke = *Env && std::strcmp(Env, "0") != 0;
  unsigned Count = Smoke ? 400 : 20000;
  if (const char *Env = std::getenv("BARRACUDA_HOTPATH_RECORDS"))
    Count = static_cast<unsigned>(std::strtoul(Env, nullptr, 10));

  std::printf("Detector hot-path throughput: %u warp records/scenario "
              "(32 lanes x 4 bytes each)%s\n\n",
              Count, Smoke ? " [smoke]" : "");

  Scenario Scenarios[] = {
      coalesced(Count, MemSpace::Global),
      strided(Count),
      conflicting(Count),
      coalesced(Count, MemSpace::Shared),
  };

  std::printf("%-17s %14s %14s %9s   hot-path counters\n", "scenario",
              "legacy rec/s", "hotpath rec/s", "speedup");
  for (const Scenario &S : Scenarios) {
    if (!Smoke) { // warm allocator and shadow pages
      runScenario(S, false);
      runScenario(S, true);
    }
    RunResult Legacy = runScenario(S, false);
    RunResult Hot = runScenario(S, true);

    if (Legacy.Races != Hot.Races)
      fail(S.Name, "verdicts differ between legacy and hot path");
    if (S.ExpectCoalesced &&
        (Hot.Stats.RunsCoalesced == 0 || Hot.Stats.FastPathHits == 0))
      fail(S.Name, "expected coalesced runs and fast-path hits");
    if (!S.ExpectCoalesced && Hot.Stats.RunsCoalesced != 0)
      fail(S.Name, "unexpected coalesced runs");

    double LegacyRate = Count / Legacy.Seconds;
    double HotRate = Count / Hot.Seconds;
    std::printf("%-17s %14.0f %14.0f %8.2fx   fast %llu, runs %llu, "
                "page %llu/%llu\n",
                S.Name, LegacyRate, HotRate, HotRate / LegacyRate,
                static_cast<unsigned long long>(Hot.Stats.FastPathHits),
                static_cast<unsigned long long>(Hot.Stats.RunsCoalesced),
                static_cast<unsigned long long>(Hot.Stats.PageCacheHits),
                static_cast<unsigned long long>(
                    Hot.Stats.PageCacheMisses));
  }

  std::printf("\nlegacy = per-byte reference loop (HotPath off); both "
              "modes run the same rules and must agree on verdicts.\n");

  // Metrics overhead: the observability layer's promise is that stats
  // collection stays off the per-record path (processors tally plain
  // local counters; the registry is touched once per queue at finish).
  // Compare the hot path with CollectStats on vs off, best-of-3 each to
  // damp scheduler noise. Smoke mode enforces the bound.
  {
    unsigned OverheadCount = Count < 20000 ? 20000 : Count;
    Scenario S = coalesced(OverheadCount, MemSpace::Global);
    auto best = [&](bool CollectStats) {
      double Best = 1e9;
      for (int Rep = 0; Rep != 3; ++Rep) {
        double Seconds = runScenario(S, true, CollectStats).Seconds;
        if (Seconds < Best)
          Best = Seconds;
      }
      return Best;
    };
    best(true); // warm allocator and shadow pages
    double On = best(true);
    double Off = best(false);
    double OverheadPct = 100.0 * (Off > 0 ? On / Off - 1.0 : 0.0);
    std::printf("\nmetrics overhead (coalesced-global, %u records, "
                "best of 3): stats-on %.0f rec/s, stats-off %.0f rec/s "
                "(%+.1f%%)\n",
                OverheadCount, OverheadCount / On, OverheadCount / Off,
                OverheadPct);
    // Generous bound: the real overhead is ~0, the margin absorbs CI
    // timer noise.
    if (Smoke && OverheadPct > 30.0)
      fail("metrics-overhead",
           "stats collection slowed the hot path by more than 30%");
  }

  // Profiling overhead: rule attribution adds one branch and one plain
  // counter per record (a clock read only on every 64th of a kind), and
  // the live exporter samples from its own thread — the target is <= 3%
  // over the detached run. Best-of-5 each; smoke mode enforces a
  // noise-padded bound.
  {
    unsigned OverheadCount = Count < 20000 ? 20000 : Count;
    Scenario S = coalesced(OverheadCount, MemSpace::Global);
    char Dir[] = "/tmp/barracuda-hotpath-metrics-XXXXXX";
    const char *MetricsDir = ::mkdtemp(Dir);
    auto best = [&](bool Profiled) {
      double Best = 1e9;
      for (int Rep = 0; Rep != 5; ++Rep) {
        double Seconds =
            runScenario(S, true, true, Profiled,
                        Profiled ? MetricsDir : nullptr)
                .Seconds;
        if (Seconds < Best)
          Best = Seconds;
      }
      return Best;
    };
    best(false); // warm allocator and shadow pages
    double Off = best(false);
    double On = best(true);
    double OverheadPct = 100.0 * (Off > 0 ? On / Off - 1.0 : 0.0);
    std::printf("\nprofiling overhead (coalesced-global, %u records, "
                "rule attribution + live exporter, best of 5): "
                "on %.0f rec/s, off %.0f rec/s (%+.1f%%)\n",
                OverheadCount, OverheadCount / On, OverheadCount / Off,
                OverheadPct);
    // The 3% target holds on quiet machines; the smoke bound pads it
    // for CI timer noise the same way the metrics bound does.
    if (Smoke && OverheadPct > 25.0)
      fail("profiling-overhead",
           "rule profiling + exporter slowed the hot path by more "
           "than 25%");
  }
  return 0;
}
