//===- ablation_ptvc.cpp - PTVC compression ablation (Section 4.3.1) -------===//
//
// Quantifies the paper's key scaling claim: per-thread vector clocks
// compressed at warp granularity. Reports
//
//   (a) the PTVC format census over representative workloads — the paper
//       observed ~90% of the time PTVCs are representable with at most
//       two clock values per warp (CONVERGED or DIVERGED);
//   (b) compressed PTVC memory versus the uncompressed reference
//       detector's full vector clocks on identical traces, plus the
//       O(n^2) full-VC footprint extrapolated to the paper's
//       million-thread kernels.
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "baseline/Reference.h"
#include "instrument/Instrumenter.h"
#include "ptx/Parser.h"
#include "suite/Suite.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Generator.h"

#include <cstdio>

using namespace barracuda;
using support::formatBytes;
using support::formatString;

namespace {

struct Census {
  detector::PtvcFormatStats Formats;
  uint64_t PeakPtvcBytes = 0;
  uint64_t ReferencePeakBytes = 0;
  uint64_t Threads = 0;
};

Census runProgram(const suite::SuiteProgram &Program) {
  Census Result;

  // Production pipeline for format stats and compressed footprint.
  Session S;
  if (!S.loadModule(Program.Ptx)) {
    std::fprintf(stderr, "parse error: %s\n", S.error().c_str());
    std::exit(1);
  }
  std::vector<uint64_t> Params;
  for (const auto &Spec : Program.Params) {
    if (Spec.K == suite::ParamSpec::Kind::Value) {
      Params.push_back(Spec.Value);
      continue;
    }
    uint64_t Addr = S.alloc(Spec.BufferBytes);
    if (Spec.HasInitWord)
      S.writeU32(Addr, Spec.InitWord);
    Params.push_back(Addr);
  }
  support::Result<sim::LaunchResult> Launch = S.launchKernel(Program.KernelName,
                                            Program.Grid, Program.Block,
                                            Params);
  if (!Launch.ok()) {
    std::fprintf(stderr, "launch failed: %s\n", Launch.status().message().c_str());
    std::exit(1);
  }
  Result.Formats = S.report().Detector.Formats;
  Result.PeakPtvcBytes = S.report().Detector.PeakPtvcBytes;
  Result.Threads = Launch.value().ThreadsLaunched;

  // Reference detector on the same trace for the uncompressed footprint.
  {
    std::unique_ptr<ptx::Module> Mod = ptx::parseOrDie(Program.Ptx);
    instrument::InstrumenterOptions InstrOpts;
    instrument::ModuleInstrumentation Instr =
        instrument::instrumentModule(*Mod, InstrOpts);
    sim::GlobalMemory Memory;
    sim::Machine::layoutModuleGlobals(*Mod, Memory);
    sim::Machine Machine(Memory);
    const ptx::Kernel *K = Mod->findKernel(Program.KernelName);
    sim::ParamBuilder Builder(*K);
    size_t Index = 0;
    for (const auto &Spec : Program.Params) {
      if (Spec.K == suite::ParamSpec::Kind::Value) {
        Builder.set(Index++, Spec.Value);
        continue;
      }
      uint64_t Addr = Memory.allocate(Spec.BufferBytes);
      if (Spec.HasInitWord)
        Memory.write(Addr, 4, Spec.InitWord);
      Builder.set(Index++, Addr);
    }
    sim::LaunchConfig Config;
    Config.Grid = Program.Grid;
    Config.Block = Program.Block;
    sim::CollectingLogger Logger;
    size_t KI = static_cast<size_t>(K - Mod->Kernels.data());
    Machine.launch(*Mod, *K, &Instr.Kernels[KI], Config, Builder.bytes(),
                   &Logger);
    baseline::ReferenceDetector Reference{sim::ThreadHierarchy(Config)};
    Reference.processAll(Logger.Records);
    Result.ReferencePeakBytes = Reference.peakVectorClockBytes();
  }
  return Result;
}

} // namespace

int main() {
  std::printf("PTVC compression ablation (Section 4.3.1)\n\n");

  static const char *const Workloads[] = {
      "g_disjoint_slots",   "s_producer_consumer_barrier",
      "w_nested_disjoint",  "a_cas_retry_loop",
      "l_spinlock_correct", "f_threadfence_reduction",
      "b_barrier_loop",     "m_mixed_spaces",
  };

  support::TableWriter Table;
  Table.addHeader({"workload", "converged", "diverged", "nested",
                   "sparse", "warp-compressible", "ptvc peak",
                   "full-vc peak"});

  detector::PtvcFormatStats Aggregate;
  uint64_t TotalPtvc = 0, TotalReference = 0;
  for (const char *Name : Workloads) {
    const suite::SuiteProgram *Program = suite::findSuiteProgram(Name);
    if (!Program) {
      std::fprintf(stderr, "missing suite program %s\n", Name);
      return 1;
    }
    Census Result = runProgram(*Program);
    Aggregate.merge(Result.Formats);
    TotalPtvc += Result.PeakPtvcBytes;
    TotalReference += Result.ReferencePeakBytes;

    auto pct = [&](detector::PtvcFormat Format) {
      return formatString("%5.1f%%",
                          100.0 * Result.Formats.fraction(Format));
    };
    Table.addRow({Name, pct(detector::PtvcFormat::Converged),
                  pct(detector::PtvcFormat::Diverged),
                  pct(detector::PtvcFormat::NestedDiverged),
                  pct(detector::PtvcFormat::SparseVc),
                  formatString(
                      "%5.1f%%",
                      100.0 * Result.Formats.warpCompressibleFraction()),
                  formatBytes(Result.PeakPtvcBytes),
                  formatBytes(Result.ReferencePeakBytes)});
  }
  // The suite rows above deliberately include the divergence-heavy
  // stress programs. For the paper's "roughly 90% of the time" census,
  // weight by realistic workloads too: three Table 1 benchmarks.
  for (const char *Name : {"backprop", "kmeans", "pathfinder"}) {
    const workloads::BenchmarkSpec *Spec = workloads::findSpec(Name);
    if (!Spec)
      continue;
    workloads::GeneratorOptions GenOptions;
    GenOptions.MaxMeasureThreads = 8192;
    workloads::GeneratedBenchmark Bench =
        workloads::generateBenchmark(*Spec, GenOptions);
    Session S;
    if (!S.loadModule(Bench.Ptx))
      continue;
    uint64_t Data = S.alloc(Bench.DataBytes);
    if (!S.launchKernel(Bench.KernelName, Bench.MeasureGrid, Bench.Block,
                        {Data})
             .ok())
      continue;
    RunReport Report = S.report();
    const detector::PtvcFormatStats &Formats = Report.Detector.Formats;
    Aggregate.merge(Formats);
    TotalPtvc += Report.Detector.PeakPtvcBytes;
    auto pct = [&](detector::PtvcFormat Format) {
      return formatString("%5.1f%%", 100.0 * Formats.fraction(Format));
    };
    Table.addRow({Name, pct(detector::PtvcFormat::Converged),
                  pct(detector::PtvcFormat::Diverged),
                  pct(detector::PtvcFormat::NestedDiverged),
                  pct(detector::PtvcFormat::SparseVc),
                  formatString("%5.1f%%",
                               100.0 *
                                   Formats.warpCompressibleFraction()),
                  formatBytes(Report.Detector.PeakPtvcBytes),
                  "(not run)"});
  }
  Table.print();

  std::printf("\nAggregate: %.1f%% of records see a warp-compressible "
              "(CONVERGED/DIVERGED) PTVC — the paper observed roughly "
              "90%%.\n",
              100.0 * Aggregate.warpCompressibleFraction());
  std::printf("Compressed PTVC peak %s vs uncompressed full-VC peak %s "
              "on identical traces (%.1fx saving at toy scale).\n",
              formatBytes(TotalPtvc).c_str(),
              formatBytes(TotalReference).c_str(),
              TotalPtvc ? static_cast<double>(TotalReference) /
                              static_cast<double>(TotalPtvc)
                        : 0.0);

  // The scaling argument of Section 4.3.1: n threads need n^2 clock
  // entries uncompressed.
  std::printf("\nExtrapolated uncompressed per-thread VC storage "
              "(4-byte entries):\n");
  support::TableWriter Scale;
  Scale.addHeader({"threads", "full VCs", "paper's PTVC scheme"});
  for (uint64_t Threads : {1024ULL, 65536ULL, 1048576ULL}) {
    uint64_t Full = Threads * Threads * 4;
    // Compressed: ~one 16-byte stack entry per warp in the common case.
    uint64_t Compressed = (Threads / 32) * 16;
    Scale.addRow({support::formatWithCommas(Threads), formatBytes(Full),
                  formatBytes(Compressed)});
  }
  Scale.print();
  std::printf("A million-thread kernel needs terabytes of full vector "
              "clocks but only megabytes of compressed PTVCs.\n");
  return 0;
}
