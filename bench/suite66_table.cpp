//===- suite66_table.cpp - Section 6.1: the concurrency bug suite table ----===//
//
// Regenerates the Section 6.1 comparison: BARRACUDA versus the Racecheck
// model on the 66-program concurrency suite. The paper reports BARRACUDA
// correct on all 66 and CUDA-Racecheck correct on only 19, with false
// positives on intra-warp synchronization, missed global-memory races,
// and hangs on spinlock tests.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"
#include "support/Format.h"
#include "support/TableWriter.h"

#include <cstdio>
#include <map>

using namespace barracuda;
using namespace barracuda::suite;

int main() {
  const auto &Suite = concurrencySuite();
  std::printf("Section 6.1: concurrency bug suite (%zu programs)\n\n",
              Suite.size());

  support::TableWriter Table;
  Table.addHeader({"program", "category", "ground truth", "barracuda",
                   "racecheck"});

  struct Tally {
    unsigned Total = 0;
    unsigned BarracudaCorrect = 0;
    unsigned RacecheckCorrect = 0;
  };
  std::map<std::string, Tally> ByCategory;
  unsigned RacecheckHangs = 0, RacecheckFalsePos = 0,
           RacecheckMissed = 0;

  for (const SuiteProgram &Program : Suite) {
    ToolVerdict Barracuda = runBarracuda(Program);
    ToolVerdict Racecheck = runRacecheckModel(Program);

    auto cell = [&](const ToolVerdict &Verdict) -> std::string {
      if (!Verdict.Completed)
        return "HANG";
      std::string Text = Verdict.ReportedProblem ? "race" : "ok";
      Text += Verdict.correctFor(Program) ? "" : " (WRONG)";
      return Text;
    };
    Table.addRow({Program.Name, Program.Category,
                  Program.expectProblem() ? "buggy" : "race-free",
                  cell(Barracuda), cell(Racecheck)});

    Tally &T = ByCategory[Program.Category];
    ++T.Total;
    if (Barracuda.correctFor(Program))
      ++T.BarracudaCorrect;
    if (Racecheck.correctFor(Program))
      ++T.RacecheckCorrect;
    if (!Racecheck.Completed)
      ++RacecheckHangs;
    else if (Racecheck.ReportedProblem && !Program.expectProblem())
      ++RacecheckFalsePos;
    else if (!Racecheck.ReportedProblem && Program.expectProblem())
      ++RacecheckMissed;
  }
  Table.print();

  std::printf("\nPer category (correct / total):\n");
  support::TableWriter Summary;
  Summary.addHeader({"category", "barracuda", "racecheck"});
  unsigned BarracudaTotal = 0, RacecheckTotal = 0, Total = 0;
  for (const auto &[Category, T] : ByCategory) {
    Summary.addRow({Category,
                    support::formatString("%u/%u", T.BarracudaCorrect,
                                          T.Total),
                    support::formatString("%u/%u", T.RacecheckCorrect,
                                          T.Total)});
    BarracudaTotal += T.BarracudaCorrect;
    RacecheckTotal += T.RacecheckCorrect;
    Total += T.Total;
  }
  Summary.addRow({"TOTAL",
                  support::formatString("%u/%u", BarracudaTotal, Total),
                  support::formatString("%u/%u", RacecheckTotal, Total)});
  Summary.print();

  std::printf("\nRacecheck-model failure modes: %u hangs (spinlocks), "
              "%u false positives (fence/warp-synchronous code), "
              "%u missed races (global memory, scopes)\n",
              RacecheckHangs, RacecheckFalsePos, RacecheckMissed);
  std::printf("Paper: BARRACUDA 66/66 correct; CUDA-Racecheck 19/66.\n");
  return BarracudaTotal == Total ? 0 : 1;
}
