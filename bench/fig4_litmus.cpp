//===- fig4_litmus.cpp - Figure 4: memory fence litmus tests ---------------===//
//
// Regenerates Figure 4: the message-passing (mp) litmus test with every
// combination of membar.cta / membar.gl in the writer and reader, on the
// Kepler-like (GRID K520) and Maxwell-like (GTX Titan X) weak-memory
// profiles. The variables x and y live in global memory with the .cg
// cache operator and the two test threads run in distinct thread blocks,
// exactly as in Section 3.3.3. Reported: weak (r1=1 && r2=0)
// observations, normalized to 1 million runs.
//
// Environment: BARRACUDA_LITMUS_RUNS overrides the run count (default
// 200000).
//
//===----------------------------------------------------------------------===//

#include "barracuda/Session.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/TableWriter.h"

#include <cstdlib>
#include <string>

using namespace barracuda;

namespace {

/// The mp test plus per-thread randomized delay loops — the "memory
/// stress and thread randomization" strategy the paper borrows from
/// Alglave et al. to provoke weak behaviour; without schedule jitter the
/// lockstep interleaving never opens the reordering window.
std::string mpKernel(const char *Fence1, const char *Fence2) {
  std::string Ptx = R"(
.version 4.3
.target sm_35
.address_size 64

.visible .entry mp(
    .param .u64 x,
    .param .u64 y,
    .param .u64 out,
    .param .u32 delay0,
    .param .u32 delay1
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .pred %p<4>;
    ld.param.u64 %rd1, [x];
    ld.param.u64 %rd2, [y];
    ld.param.u64 %rd3, [out];
    mov.u32 %r1, %ctaid.x;
    setp.ne.u32 %p1, %r1, 0;
    @%p1 bra READER;
    ld.param.u32 %r4, [delay0];
WSPIN:
    setp.eq.u32 %p2, %r4, 0;
    @%p2 bra WGO;
    sub.u32 %r4, %r4, 1;
    bra.uni WSPIN;
WGO:
    st.global.cg.u32 [%rd1], 1;
)";
  Ptx += Fence1;
  Ptx += R"(
    st.global.cg.u32 [%rd2], 1;
    bra.uni DONE;
READER:
    ld.param.u32 %r5, [delay1];
RSPIN:
    setp.eq.u32 %p3, %r5, 0;
    @%p3 bra RGO;
    sub.u32 %r5, %r5, 1;
    bra.uni RSPIN;
RGO:
    ld.global.cg.u32 %r2, [%rd2];
)";
  Ptx += Fence2;
  Ptx += R"(
    ld.global.cg.u32 %r3, [%rd1];
    st.global.u32 [%rd3], %r2;
    st.global.u32 [%rd3+4], %r3;
DONE:
    ret;
)";
  return Ptx + "}\n";
}

uint64_t runConfig(sim::WeakProfileKind Profile, const char *Fence1,
                   const char *Fence2, uint64_t Runs) {
  SessionOptions Options;
  Options.Instrument = false; // native execution under the weak model
  Options.Machine.WeakProfile = Profile;
  Session S(Options);
  std::string Ptx =
      mpKernel((std::string("    ") + Fence1 + ";\n").c_str(),
               (std::string("    ") + Fence2 + ";\n").c_str());
  if (!S.loadModule(Ptx)) {
    std::fprintf(stderr, "parse error: %s\n", S.error().c_str());
    std::exit(1);
  }
  uint64_t X = S.alloc(64), Y = S.alloc(64), Out = S.alloc(64);

  support::Rng Rng(0xF16F0uLL ^ (Fence1[7] * 131) ^ Fence2[7]);
  uint64_t Weak = 0;
  for (uint64_t Run = 0; Run != Runs; ++Run) {
    S.writeU32(X, 0);
    S.writeU32(Y, 0);
    S.writeU32(Out, 0);
    S.writeU32(Out + 4, 0);
    uint64_t Delay0 = Rng.nextBelow(8);
    uint64_t Delay1 = Rng.nextBelow(24);
    support::Result<sim::LaunchResult> Result = S.launchKernel(
        "mp", sim::Dim3(2), sim::Dim3(1), {X, Y, Out, Delay0, Delay1});
    if (!Result.ok()) {
      std::fprintf(stderr, "launch failed: %s\n", Result.status().message().c_str());
      std::exit(1);
    }
    uint32_t R1 = S.readU32(Out);
    uint32_t R2 = S.readU32(Out + 4);
    if (R1 == 1 && R2 == 0)
      ++Weak;
  }
  return Weak;
}

} // namespace

int main() {
  uint64_t Runs = 200000;
  if (const char *Env = std::getenv("BARRACUDA_LITMUS_RUNS"))
    Runs = std::strtoull(Env, nullptr, 10);

  std::printf("Figure 4: mp litmus test, weak observations "
              "(normalized to 1M runs; %llu actual runs per cell)\n",
              static_cast<unsigned long long>(Runs));
  std::printf("init: x = y = 0   final: r1=1 && r2=0\n");
  std::printf("1.1 st.global.cg [x],1     2.1 ld.global.cg r1,[y]\n");
  std::printf("1.2 fence1                 2.2 fence2\n");
  std::printf("1.3 st.global.cg [y],1     2.3 ld.global.cg r2,[x]\n\n");

  static const char *const Fences[] = {"membar.cta", "membar.gl"};
  support::TableWriter Table;
  Table.addHeader({"fence1", "fence2", "K520", "GTX Titan X"});
  Table.setRightAligned(2);
  Table.setRightAligned(3);

  for (const char *Fence1 : Fences) {
    for (const char *Fence2 : Fences) {
      uint64_t Kepler = runConfig(sim::WeakProfileKind::KeplerK520, Fence1,
                                  Fence2, Runs);
      uint64_t Maxwell = runConfig(sim::WeakProfileKind::MaxwellTitanX,
                                   Fence1, Fence2, Runs);
      auto normalize = [&](uint64_t Count) {
        return support::formatWithCommas(Count * 1000000 / Runs);
      };
      Table.addRow({Fence1, Fence2, normalize(Kepler),
                    normalize(Maxwell)});
    }
  }
  Table.print();

  std::printf("\nShape check (paper: only cta/cta on the K520 shows weak "
              "behaviour):\n");
  std::printf("  membar.cta alone cannot implement synchronization "
              "between thread blocks;\n  a membar.gl in either thread "
              "restores sequential consistency.\n");
  return 0;
}
