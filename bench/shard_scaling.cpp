//===- shard_scaling.cpp - sharded detector core-scaling bench -------------===//
//
// Measures end-to-end detector throughput (queue transport included)
// as worker count and shard count sweep 1 -> 16, on two workload
// families:
//
//   shard-friendly    : full-warp coalesced 4-byte accesses, each warp
//                       sweeping its own 64 KB shadow page — posts
//                       spread evenly over shards, runs never straddle
//                       a page, no sync traffic. The workload the
//                       sharded design is built for.
//   shard-adversarial : page-boundary-straddling runs (every run splits
//                       into two pieces for two different shards),
//                       atomic-heavy hot addresses funnelling posts
//                       into one shard, overlapping racy writes, and
//                       periodic release operations whose ticket
//                       markers fan out to every shard and serialize
//                       the owners.
//
// Each worker-count W runs one HostDetector over W pre-routed queues
// with W shards (shards default to the worker count, as in the
// session). W = 1 with one shard is the single-table inline oracle —
// the same code path the unsharded detector runs.
//
// Invariants enforced every run:
//   - shard-friendly finds no races at any configuration;
//   - shard-adversarial at 1 worker matches the inline oracle's race
//     reports exactly (both orders are deterministic) and finds races
//     at every worker count;
//   - with >= 8 hardware cores (and not in smoke mode), 8 workers must
//     reach >= 3x the 1-worker throughput on the friendly family;
//   - in smoke mode, the 1-worker 1-shard configuration must stay
//     within a noise-padded bound of the direct processor loop (the
//     <= 3% no-regression target for --shadow-shards=1; the smoke
//     bound is padded for CI timer noise and queue transport).
//
// Writes BENCH_shard_scaling.json (one fresh document per run) into
// the working directory.
//
// Environment:
//   BARRACUDA_SHARD_RECORDS  records per family (default 100000)
//   BARRACUDA_BENCH_SMOKE=1  few records, invariant checks only
//
//===----------------------------------------------------------------------===//

#include "detector/Detector.h"
#include "detector/Host.h"
#include "detector/Shadow.h"
#include "support/Json.h"
#include "trace/Queue.h"
#include "trace/Record.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

using namespace barracuda;
using namespace barracuda::detector;
using trace::LogRecord;
using trace::MemSpace;
using trace::RecordOp;
using trace::WarpSize;

namespace {

constexpr uint32_t WarpsPerBlock = 2;
constexpr uint32_t NumBlocks = 16;
constexpr uint32_t NumWarps = NumBlocks * WarpsPerBlock;
constexpr uint64_t PageSize = GlobalShadow::PageSize;
constexpr uint64_t GlobalBase = 0x100000; // page-aligned

sim::ThreadHierarchy hierarchy() {
  sim::ThreadHierarchy Hier;
  Hier.ThreadsPerBlock = WarpsPerBlock * WarpSize;
  Hier.WarpsPerBlock = WarpsPerBlock;
  return Hier;
}

LogRecord memRecord(RecordOp Op, uint32_t Warp, uint32_t Pc,
                    uint64_t Base, uint64_t LaneStride) {
  LogRecord Record = trace::makeMemRecord(Op, Warp, Pc, MemSpace::Global,
                                          4, /*ActiveMask=*/~0u);
  for (unsigned Lane = 0; Lane != WarpSize; ++Lane)
    Record.Addr[Lane] = Base + Lane * LaneStride;
  return Record;
}

struct Workload {
  const char *Name;
  std::vector<LogRecord> Records;
  std::vector<uint32_t> BlockIds;

  void push(const LogRecord &Record) {
    Records.push_back(Record);
    BlockIds.push_back(Record.Warp / WarpsPerBlock);
  }
};

/// Every warp sweeps its own shadow page with coalesced read/write
/// pairs: the posts distribute 1:1 over shards and nothing races.
Workload friendly(unsigned Count) {
  Workload W;
  W.Name = "shard-friendly";
  constexpr uint64_t Sweep = PageSize / (WarpSize * 4);
  for (unsigned I = 0; I != Count; ++I) {
    uint32_t Warp = I % NumWarps;
    uint64_t Base = GlobalBase + Warp * PageSize +
                    (I / NumWarps % Sweep) * WarpSize * 4;
    RecordOp Op = (I / NumWarps) % 2 ? RecordOp::Read : RecordOp::Write;
    W.push(memRecord(Op, Warp, /*Pc=*/1, Base, 4));
  }
  return W;
}

/// Boundary-straddling runs, one hot atomic granule, overlapping racy
/// writes in a single page, and periodic releases (ticket markers fan
/// out to every shard).
Workload adversarial(unsigned Count) {
  Workload W;
  W.Name = "shard-adversarial";
  uint32_t Ticket = 0;
  for (unsigned I = 0; I != Count; ++I) {
    uint32_t Warp = I % NumWarps;
    if (I % 96 == 95) {
      // A release whose marker every shard must consume in order.
      LogRecord Rel = memRecord(RecordOp::Rel, Warp, /*Pc=*/9,
                                GlobalBase + 8 * PageSize, 0);
      Rel.setScope(trace::SyncScope::Global);
      Rel.SyncSeq = ++Ticket;
      W.push(Rel);
      continue;
    }
    switch ((I / NumWarps) % 3) {
    case 0: // run straddling a page boundary: splits into two shards
      W.push(memRecord(RecordOp::Write, Warp, /*Pc=*/2,
                       GlobalBase + ((Warp % 4) + 1) * PageSize - 64, 4));
      break;
    case 1: // every lane of every warp bumps one hot counter
      W.push(memRecord(RecordOp::Atom, Warp, /*Pc=*/3,
                       GlobalBase + 0x40, 0));
      break;
    default: // overlapping racy writes crammed into one page
      W.push(memRecord(RecordOp::Write, Warp, /*Pc=*/4,
                       GlobalBase + (I % 8) * 128, 4));
      break;
    }
  }
  return W;
}

using RaceKey = std::tuple<uint32_t, AccessKind, AccessKind, MemSpace,
                           RaceScopeKind, uint64_t>;

std::vector<RaceKey> keysOf(const RaceReporter &Reporter) {
  std::vector<RaceKey> Keys;
  for (const RaceReport &Race : Reporter.races())
    Keys.emplace_back(Race.Pc, Race.Current, Race.Previous, Race.Space,
                      Race.Scope, Race.Count);
  return Keys;
}

struct RunResult {
  double Seconds = 0;
  std::vector<RaceKey> Races;
};

/// The inline oracle: one QueueProcessor, no queues, no shards.
RunResult runInline(const Workload &W) {
  DetectorOptions Opts;
  Opts.Hier = hierarchy();
  SharedDetectorState State(Opts);
  QueueProcessor Processor(State);
  auto Start = std::chrono::steady_clock::now();
  for (const LogRecord &Record : W.Records)
    Processor.process(Record);
  RunResult Result;
  Result.Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  Processor.finish();
  Result.Races = keysOf(State.Reporter);
  return Result;
}

/// One HostDetector over \p Workers pre-routed queues with \p Shards
/// shadow shards; per-queue producer threads feed the rings while the
/// workers drain, so the measurement includes the full transport.
RunResult runSharded(const Workload &W, unsigned Workers,
                     unsigned Shards) {
  DetectorOptions Opts;
  Opts.Hier = hierarchy();
  Opts.ShadowShards = Shards;
  Opts.NumQueues = Workers;
  SharedDetectorState State(Opts);

  // Pre-route each record to its block's queue so producer threads
  // don't contend on a shared cursor.
  std::vector<std::vector<const LogRecord *>> PerQueue(Workers);
  for (size_t I = 0; I != W.Records.size(); ++I)
    PerQueue[W.BlockIds[I] % Workers].push_back(&W.Records[I]);

  trace::QueueSet Queues(Workers, /*CapacityPow2=*/1 << 12);
  HostDetector Detector(Queues, State);

  auto Start = std::chrono::steady_clock::now();
  Detector.start();
  std::vector<std::thread> Producers;
  for (unsigned Q = 0; Q != Workers; ++Q)
    Producers.emplace_back([&, Q] {
      for (const LogRecord *Record : PerQueue[Q])
        Queues.queue(Q).push(*Record);
      Queues.queue(Q).close();
    });
  for (std::thread &Producer : Producers)
    Producer.join();
  Detector.join();
  RunResult Result;
  Result.Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  Result.Races = keysOf(State.Reporter);
  return Result;
}

void fail(const char *Family, const char *What) {
  std::fprintf(stderr, "FAIL [%s]: %s\n", Family, What);
  std::exit(1);
}

double bestOf(unsigned Reps, const std::function<double()> &Run) {
  double Best = 1e18;
  for (unsigned Rep = 0; Rep != Reps; ++Rep)
    Best = std::min(Best, Run());
  return Best;
}

} // namespace

int main() {
  bool Smoke = false;
  if (const char *Env = std::getenv("BARRACUDA_BENCH_SMOKE"))
    Smoke = *Env && std::strcmp(Env, "0") != 0;
  unsigned Count = Smoke ? 3000 : 100000;
  if (const char *Env = std::getenv("BARRACUDA_SHARD_RECORDS"))
    Count = static_cast<unsigned>(std::strtoul(Env, nullptr, 10));
  unsigned Reps = Smoke ? 1 : 3;
  unsigned HostCores = std::thread::hardware_concurrency();

  std::printf("Sharded detector core scaling: %u warp records/family, "
              "%u host cores%s\n\n",
              Count, HostCores, Smoke ? " [smoke]" : "");

  const unsigned WorkerCounts[] = {1, 2, 4, 8, 16};

  support::json::Writer Json;
  Json.beginObject();
  Json.key("bench").value(std::string("shard_scaling"));
  Json.key("description")
      .value(std::string(
          "HostDetector throughput over pre-routed queues, workers = "
          "queues = shards sweeping 1..16 (records/sec)"));
  Json.key("units").value(std::string("records/sec"));
  Json.key("hostCores").value(static_cast<uint64_t>(HostCores));
  Json.key("recordsPerFamily").value(static_cast<uint64_t>(Count));
  Json.key("smoke").value(Smoke);
  Json.key("families").beginObject();

  double FriendlyRate1 = 0, FriendlyRate8 = 0;
  for (bool Friendly : {true, false}) {
    Workload W = Friendly ? friendly(Count) : adversarial(Count);

    RunResult Oracle = runInline(W);
    double InlineBest =
        bestOf(Reps, [&] { return runInline(W).Seconds; });
    if (Friendly && !Oracle.Races.empty())
      fail(W.Name, "friendly workload must be race-free");
    if (!Friendly && Oracle.Races.empty())
      fail(W.Name, "adversarial workload must race");

    std::printf("%s (inline oracle %.0f rec/s, %zu distinct races)\n",
                W.Name, Count / InlineBest, Oracle.Races.size());
    std::printf("  %8s %8s %14s %9s\n", "workers", "shards", "rec/s",
                "vs 1");

    Json.key(W.Name).beginObject();
    Json.key("inlineRecPerSec")
        .value(static_cast<uint64_t>(Count / InlineBest));
    Json.key("points").beginArray();

    double Rate1 = 0;
    for (unsigned Workers : WorkerCounts) {
      RunResult First = runSharded(W, Workers, Workers);
      if (Friendly && !First.Races.empty())
        fail(W.Name, "sharded run reported races on race-free input");
      if (!Friendly && First.Races.empty())
        fail(W.Name, "sharded run missed the adversarial races");
      if (!Friendly && Workers == 1 && First.Races != Oracle.Races)
        fail(W.Name,
             "1-worker sharded verdicts differ from the inline oracle");

      double Best = First.Seconds;
      for (unsigned Rep = 1; Rep < Reps; ++Rep)
        Best = std::min(Best, runSharded(W, Workers, Workers).Seconds);
      double Rate = Count / Best;
      if (Workers == 1)
        Rate1 = Rate;
      if (Friendly && Workers == 1)
        FriendlyRate1 = Rate;
      if (Friendly && Workers == 8)
        FriendlyRate8 = Rate;
      std::printf("  %8u %8u %14.0f %8.2fx\n", Workers, Workers, Rate,
                  Rate / Rate1);

      Json.beginObject();
      Json.key("workers").value(static_cast<uint64_t>(Workers));
      Json.key("shards").value(static_cast<uint64_t>(Workers));
      Json.key("recPerSec").value(static_cast<uint64_t>(Rate));
      Json.key("speedupVs1").value(Rate / Rate1);
      Json.endObject();
    }
    Json.endArray();
    Json.endObject();
    std::printf("\n");
  }
  Json.endObject();

  // The <= 3% no-regression target for --shadow-shards=1: the 1-worker
  // 1-shard configuration runs the inline code path (no ShardSet is
  // created), so any gap against the direct processor loop is queue
  // transport plus timer noise. The smoke gate pads the bound the same
  // way the hot-path bench's overhead gates do.
  {
    Workload W = friendly(Count);
    double Inline = bestOf(7, [&] { return runInline(W).Seconds; });
    double Single =
        bestOf(7, [&] { return runSharded(W, 1, 1).Seconds; });
    double OverheadPct = 100.0 * (Inline > 0 ? Single / Inline - 1.0 : 0);
    std::printf("shards=1 overhead vs direct processor loop "
                "(best of 7): inline %.0f rec/s, 1-worker/1-shard "
                "%.0f rec/s (%+.1f%%)\n",
                Count / Inline, Count / Single, OverheadPct);
    Json.key("singleShardOverheadPct").value(OverheadPct);
    if (Smoke && OverheadPct > 35.0)
      fail("shards=1",
           "single-shard configuration regressed more than the "
           "noise-padded bound over the direct loop");
  }

  // Scaling acceptance: >= 3x at 8 workers on the friendly family.
  // Only meaningful with real cores to scale onto.
  if (!Smoke && HostCores >= 8 && FriendlyRate1 > 0) {
    double Speedup = FriendlyRate8 / FriendlyRate1;
    std::printf("scaling: 8 workers = %.2fx of 1 worker "
                "(shard-friendly)\n",
                Speedup);
    if (Speedup < 3.0)
      fail("shard-friendly",
           "8 workers below 3x single-worker throughput");
  } else {
    std::printf("scaling gate skipped (%s)\n",
                Smoke ? "smoke mode" : "fewer than 8 host cores");
  }

  Json.endObject();
  std::FILE *Out = std::fopen("BENCH_shard_scaling.json", "w");
  if (Out) {
    std::string Doc = Json.take() + "\n";
    std::fwrite(Doc.data(), 1, Doc.size(), Out);
    std::fclose(Out);
    std::printf("\nwrote BENCH_shard_scaling.json\n");
  }
  return 0;
}
